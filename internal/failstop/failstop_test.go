package failstop

import (
	"errors"
	"testing"

	"repro/internal/spec"
)

func testPlatform() spec.Platform {
	return spec.Platform{Procs: []spec.Proc{
		{ID: "p1", Capacity: spec.Resources{CPU: 8, MemoryKB: 1024, PowerMW: 1000},
			LowPowerCapacity: spec.Resources{CPU: 2, MemoryKB: 512, PowerMW: 200}},
		{ID: "p2", Capacity: spec.Resources{CPU: 4, MemoryKB: 512, PowerMW: 500}},
	}}
}

func TestFailStopSemantics(t *testing.T) {
	p := NewProcessor("p1", spec.Resources{CPU: 1}, spec.Resources{}, nil)

	// Commit some state in frame 1, stage more in frame 2, then fail.
	p.Stable().PutString("alt", "1000")
	p.Stable().Commit()
	p.Stable().PutString("alt", "2000") // staged: lost at failure
	if err := p.PutVolatile("scratch", []byte("x")); err != nil {
		t.Fatalf("PutVolatile: %v", err)
	}

	p.Fail(2)

	if p.State() != StateFailed {
		t.Fatalf("state = %v, want failed", p.State())
	}
	if p.Alive() {
		t.Fatal("failed processor reports alive")
	}
	if p.FailedAtFrame() != 2 {
		t.Errorf("FailedAtFrame = %d, want 2", p.FailedAtFrame())
	}
	// Volatile lost.
	if _, ok := p.GetVolatile("scratch"); ok {
		t.Error("volatile storage survived failure")
	}
	// Stable: committed state preserved, staged write lost.
	if v, _ := p.Stable().GetString("alt"); v != "1000" {
		t.Errorf("stable alt = %q after failure, want committed value 1000", v)
	}
	if n := p.Stable().PendingWrites(); n != 0 {
		t.Errorf("staged writes survived failure: %d", n)
	}
	// Capacity drops to zero.
	if c := p.EffectiveCapacity(); c != (spec.Resources{}) {
		t.Errorf("failed capacity = %+v, want zero", c)
	}
	// Double failure is a no-op.
	p.Fail(5)
	if p.FailedAtFrame() != 2 {
		t.Errorf("double-fail changed FailedAtFrame to %d", p.FailedAtFrame())
	}
}

func TestRepairPreservesStableOnly(t *testing.T) {
	p := NewProcessor("p1", spec.Resources{CPU: 1}, spec.Resources{}, nil)
	p.Stable().PutString("k", "v")
	p.Stable().Commit()
	if err := p.PutVolatile("vol", []byte("x")); err != nil {
		t.Fatal(err)
	}
	p.Fail(1)
	p.Repair()

	if !p.Alive() {
		t.Fatal("repaired processor not alive")
	}
	if _, ok := p.GetVolatile("vol"); ok {
		t.Error("volatile storage survived fail+repair")
	}
	if v, _ := p.Stable().GetString("k"); v != "v" {
		t.Errorf("stable k = %q after repair, want v", v)
	}
}

func TestLowPowerMode(t *testing.T) {
	full := spec.Resources{CPU: 8, MemoryKB: 1024, PowerMW: 1000}
	low := spec.Resources{CPU: 2, MemoryKB: 512, PowerMW: 200}
	p := NewProcessor("p1", full, low, nil)

	if c := p.EffectiveCapacity(); c != full {
		t.Errorf("running capacity = %+v, want %+v", c, full)
	}
	if err := p.SetLowPower(true); err != nil {
		t.Fatalf("SetLowPower: %v", err)
	}
	if p.State() != StateLowPower {
		t.Errorf("state = %v, want low-power", p.State())
	}
	if !p.Alive() {
		t.Error("low-power processor should be alive")
	}
	if c := p.EffectiveCapacity(); c != low {
		t.Errorf("low-power capacity = %+v, want %+v", c, low)
	}
	if err := p.SetLowPower(false); err != nil {
		t.Fatalf("SetLowPower(false): %v", err)
	}
	if c := p.EffectiveCapacity(); c != full {
		t.Errorf("restored capacity = %+v, want %+v", c, full)
	}

	p.Fail(1)
	if err := p.SetLowPower(true); !errors.Is(err, ErrFailed) {
		t.Errorf("SetLowPower on failed proc = %v, want ErrFailed", err)
	}
}

func TestPowerOff(t *testing.T) {
	p := NewProcessor("p1", spec.Resources{CPU: 1}, spec.Resources{}, nil)
	p.Stable().PutString("k", "v")
	p.Stable().Commit()
	p.PowerOff()
	if p.State() != StateOff {
		t.Fatalf("state = %v, want off", p.State())
	}
	if p.Alive() {
		t.Error("powered-off processor reports alive")
	}
	if v, _ := p.Stable().GetString("k"); v != "v" {
		t.Error("stable storage lost on power off")
	}
	if err := p.PutVolatile("k", nil); !errors.Is(err, ErrFailed) {
		t.Errorf("PutVolatile on off proc = %v, want ErrFailed", err)
	}
	// PowerOff after failure must not mask the failed state.
	q := NewProcessor("q", spec.Resources{}, spec.Resources{}, nil)
	q.Fail(1)
	q.PowerOff()
	if q.State() != StateFailed {
		t.Errorf("PowerOff changed failed state to %v", q.State())
	}
}

func TestVolatileRoundTrip(t *testing.T) {
	p := NewProcessor("p1", spec.Resources{CPU: 1}, spec.Resources{}, nil)
	in := []byte("data")
	if err := p.PutVolatile("k", in); err != nil {
		t.Fatal(err)
	}
	in[0] = 'X'
	out, ok := p.GetVolatile("k")
	if !ok || string(out) != "data" {
		t.Fatalf("GetVolatile = %q, %v; want data (copied)", out, ok)
	}
	out[0] = 'Y'
	out2, _ := p.GetVolatile("k")
	if string(out2) != "data" {
		t.Fatal("GetVolatile returned aliased slice")
	}
	if _, ok := p.GetVolatile("missing"); ok {
		t.Error("missing volatile key found")
	}
}

func TestSelfCheckingPairAgreement(t *testing.T) {
	p := NewProcessor("p1", spec.Resources{CPU: 1}, spec.Resources{}, nil)
	sc := NewSelfCheckingPair(p)
	out, err := sc.Run(1,
		func() ([]byte, error) { return []byte("result"), nil },
		func() ([]byte, error) { return []byte("result"), nil },
	)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if string(out) != "result" {
		t.Errorf("out = %q", out)
	}
	if !p.Alive() {
		t.Error("agreement killed the processor")
	}
}

func TestSelfCheckingPairDivergenceHaltsProcessor(t *testing.T) {
	p := NewProcessor("p1", spec.Resources{CPU: 1}, spec.Resources{}, nil)
	sc := NewSelfCheckingPair(p)
	_, err := sc.Run(7,
		func() ([]byte, error) { return []byte("a"), nil },
		func() ([]byte, error) { return []byte("b"), nil },
	)
	if !errors.Is(err, ErrDivergence) {
		t.Fatalf("err = %v, want ErrDivergence", err)
	}
	if p.State() != StateFailed {
		t.Errorf("state after divergence = %v, want failed", p.State())
	}
	if p.FailedAtFrame() != 7 {
		t.Errorf("FailedAtFrame = %d, want 7", p.FailedAtFrame())
	}
	// Further runs refuse with ErrFailed.
	if _, err := sc.Run(8, nil, nil); !errors.Is(err, ErrFailed) {
		t.Errorf("Run on failed proc = %v, want ErrFailed", err)
	}
}

func TestSelfCheckingPairReplicaError(t *testing.T) {
	p := NewProcessor("p1", spec.Resources{CPU: 1}, spec.Resources{}, nil)
	sc := NewSelfCheckingPair(p)
	boom := errors.New("boom")
	_, err := sc.Run(1,
		func() ([]byte, error) { return nil, boom },
		func() ([]byte, error) { return []byte("ok"), nil },
	)
	if !errors.Is(err, ErrDivergence) {
		t.Fatalf("err = %v, want ErrDivergence", err)
	}
	if p.Alive() {
		t.Error("replica error did not halt processor")
	}
}

func TestPoolLookupAndOrder(t *testing.T) {
	pool := NewPool(testPlatform())
	procs := pool.Procs()
	if len(procs) != 2 || procs[0].ID() != "p1" || procs[1].ID() != "p2" {
		t.Fatalf("Procs order wrong: %v, %v", procs[0].ID(), procs[1].ID())
	}
	if _, err := pool.Proc("p1"); err != nil {
		t.Errorf("Proc(p1): %v", err)
	}
	if _, err := pool.Proc("ghost"); !errors.Is(err, ErrUnknownProc) {
		t.Errorf("Proc(ghost) = %v, want ErrUnknownProc", err)
	}
}

func TestPoolFailRepairAlive(t *testing.T) {
	pool := NewPool(testPlatform())
	if err := pool.Fail("p2", 3); err != nil {
		t.Fatal(err)
	}
	alive := pool.Alive()
	if len(alive) != 1 || alive[0] != "p1" {
		t.Fatalf("Alive = %v, want [p1]", alive)
	}
	if err := pool.Repair("p2"); err != nil {
		t.Fatal(err)
	}
	if len(pool.Alive()) != 2 {
		t.Fatal("repair did not restore p2")
	}
	if err := pool.Fail("ghost", 1); !errors.Is(err, ErrUnknownProc) {
		t.Errorf("Fail(ghost) = %v", err)
	}
	if err := pool.Repair("ghost"); !errors.Is(err, ErrUnknownProc) {
		t.Errorf("Repair(ghost) = %v", err)
	}
}

func TestPoolAliveCapacity(t *testing.T) {
	pool := NewPool(testPlatform())
	want := spec.Resources{CPU: 12, MemoryKB: 1536, PowerMW: 1500}
	if got := pool.AliveCapacity(); got != want {
		t.Fatalf("AliveCapacity = %+v, want %+v", got, want)
	}
	if err := pool.Fail("p2", 1); err != nil {
		t.Fatal(err)
	}
	want = spec.Resources{CPU: 8, MemoryKB: 1024, PowerMW: 1000}
	if got := pool.AliveCapacity(); got != want {
		t.Fatalf("AliveCapacity after failure = %+v, want %+v", got, want)
	}
	p1, _ := pool.Proc("p1")
	if err := p1.SetLowPower(true); err != nil {
		t.Fatal(err)
	}
	want = spec.Resources{CPU: 2, MemoryKB: 512, PowerMW: 200}
	if got := pool.AliveCapacity(); got != want {
		t.Fatalf("AliveCapacity low-power = %+v, want %+v", got, want)
	}
}

func TestPollStableOfFailedProcessor(t *testing.T) {
	pool := NewPool(testPlatform())
	p1, _ := pool.Proc("p1")
	p1.Stable().PutString("fcs/surfaces", "centered")
	p1.Stable().Commit()
	p1.Stable().PutString("fcs/surfaces", "deflected") // staged, will be lost

	if err := pool.Fail("p1", 9); err != nil {
		t.Fatal(err)
	}
	snap, err := pool.PollStable("p1")
	if err != nil {
		t.Fatalf("PollStable: %v", err)
	}
	if string(snap["fcs/surfaces"]) != "centered" {
		t.Errorf("polled state = %q, want last committed value", snap["fcs/surfaces"])
	}
	if _, err := pool.PollStable("ghost"); !errors.Is(err, ErrUnknownProc) {
		t.Errorf("PollStable(ghost) = %v", err)
	}
}

func TestStateString(t *testing.T) {
	tests := []struct {
		s    State
		want string
	}{
		{StateRunning, "running"},
		{StateLowPower, "low-power"},
		{StateFailed, "failed"},
		{StateOff, "off"},
		{State(42), "state(42)"},
	}
	for _, tt := range tests {
		if got := tt.s.String(); got != tt.want {
			t.Errorf("State(%d).String() = %q, want %q", int(tt.s), got, tt.want)
		}
	}
}
