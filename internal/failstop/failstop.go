// Package failstop models fail-stop processors in the sense of Schlichting
// and Schneider ("Fail-stop processors: an approach to designing
// fault-tolerant computing systems", TOCS 1983), as used by the assured
// reconfiguration architecture of Strunk, Knight and Aiello (DSN 2005).
//
// A fail-stop processor has exactly two externally visible failure
// behaviours:
//
//   - it stops executing at the end of the last instruction (here: frame) it
//     completed successfully, and
//   - the contents of its volatile storage are lost while the contents of
//     its stable storage are preserved and remain pollable by the surviving
//     processors.
//
// The package provides the simulated processor (Processor), the
// self-checking-pair detection mechanism that realizes fail-stop semantics
// out of non-fail-stop parts (SelfCheckingPair), and the platform-level
// collection with static placement support (Pool).
package failstop

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"

	"repro/internal/spec"
	"repro/internal/stable"
)

// Errors reported by this package.
var (
	// ErrUnknownProc reports an operation naming a processor the pool does
	// not contain.
	ErrUnknownProc = errors.New("failstop: unknown processor")
	// ErrFailed reports an operation on a processor that has failed.
	ErrFailed = errors.New("failstop: processor has failed")
	// ErrDivergence reports that the two halves of a self-checking pair
	// disagreed, which halts the processor.
	ErrDivergence = errors.New("failstop: self-checking pair divergence")
)

// State is the operational state of a processor.
type State int

// Processor states.
const (
	// StateRunning is normal operation at full capacity.
	StateRunning State = iota + 1
	// StateLowPower is operation at reduced capacity (and power draw),
	// used by configurations that must shed electrical load.
	StateLowPower
	// StateFailed is the halted state after a fail-stop failure.
	StateFailed
	// StateOff is a deliberate shutdown (e.g. a configuration that powers
	// the processor down). Unlike StateFailed, volatile contents were
	// flushed by an orderly stop.
	StateOff
)

// String returns the state name.
func (s State) String() string {
	switch s {
	case StateRunning:
		return "running"
	case StateLowPower:
		return "low-power"
	case StateFailed:
		return "failed"
	case StateOff:
		return "off"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Processor is a simulated fail-stop processor: processing capacity, volatile
// storage, and frame-atomic stable storage. A Processor is safe for
// concurrent use.
type Processor struct {
	id spec.ProcID
	// stable has its own synchronization and its identity never changes,
	// so it lives outside the mutex-guarded fields.
	stable *stable.Store

	mu            sync.Mutex
	state         State
	volatile      map[string][]byte
	capacity      spec.Resources
	lowPower      spec.Resources
	failedAtFrame int64
	storageFault  error
	failObserver  func(frame int64, storageFault error)
}

// SetFailObserver installs a callback invoked once when the processor
// fail-stops, outside the processor's lock, with the halt frame and the
// unrecoverable storage fault that caused the halt (nil for an ordinary
// failure). The telemetry layer uses it to journal processor halts.
func (p *Processor) SetFailObserver(fn func(frame int64, storageFault error)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failObserver = fn
}

// NewProcessor returns a running processor with the given identity and
// capacities. lowPower may be the zero value if the processor has no
// low-power mode.
func NewProcessor(id spec.ProcID, capacity, lowPower spec.Resources, st *stable.Store) *Processor {
	p := &Processor{
		id:       id,
		state:    StateRunning,
		volatile: make(map[string][]byte),
		capacity: capacity,
		lowPower: lowPower,
		stable:   st,
	}
	if p.stable == nil {
		p.stable = stable.NewStore()
	}
	if p.stable.Hardened() != nil {
		// Hardened storage: corruption that defeats every replica halts
		// the processor. Returning wrong (or silently absent) data would
		// break fail-stop semantics; halting preserves them, because a
		// halt is exactly the failure behaviour the rest of the system
		// is built to survive. The store invokes the sink outside its
		// lock, so the halt path may discard staged writes safely.
		p.stable.SetFaultSink(func(err error) {
			p.FailStorage(int64(p.stable.Version()), err)
		})
	}
	return p
}

// ID returns the processor identifier.
func (p *Processor) ID() spec.ProcID { return p.id }

// Stable returns the processor's stable storage. The store remains readable
// after the processor fails — that is the point of stable storage.
func (p *Processor) Stable() *stable.Store { return p.stable }

// State returns the current operational state.
func (p *Processor) State() State {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.state
}

// Alive reports whether the processor can execute work (running or
// low-power).
func (p *Processor) Alive() bool {
	s := p.State()
	return s == StateRunning || s == StateLowPower
}

// EffectiveCapacity returns the resource capacity available in the current
// state: full capacity when running, the low-power capacity when in
// low-power mode, and zero when failed or off.
func (p *Processor) EffectiveCapacity() spec.Resources {
	p.mu.Lock()
	defer p.mu.Unlock()
	switch p.state {
	case StateRunning:
		return p.capacity
	case StateLowPower:
		return p.lowPower
	default:
		return spec.Resources{}
	}
}

// Fail makes the processor fail with fail-stop semantics at the end of frame
// `frame`: execution halts, volatile storage (including stable-storage writes
// staged during the failing frame) is lost, and committed stable storage is
// preserved. Failing an already-failed processor is a no-op.
func (p *Processor) Fail(frame int64) {
	p.mu.Lock()
	if p.state == StateFailed {
		p.mu.Unlock()
		return
	}
	p.state = StateFailed
	p.failedAtFrame = frame
	clear(p.volatile)
	p.stable.Discard()
	observer, fault := p.failObserver, p.storageFault
	p.mu.Unlock()
	if observer != nil {
		observer(frame, fault)
	}
}

// FailStorage halts the processor because its stable storage suffered an
// unrecoverable fault (corruption that defeated every replica). The fault is
// recorded for diagnostics; the externally visible behaviour is an ordinary
// fail-stop failure — detection converts a sub-model storage fault into the
// clean halt the architecture is built to survive. Committed (still
// readable) storage remains pollable: the surviving replicas' data is intact
// for every key except the unrecoverable ones.
func (p *Processor) FailStorage(frame int64, err error) {
	p.mu.Lock()
	if p.state == StateFailed {
		p.mu.Unlock()
		return
	}
	p.storageFault = err
	p.mu.Unlock()
	p.Fail(frame)
}

// StorageFault returns the unrecoverable stable-storage fault that halted
// the processor, or nil if it never suffered one.
func (p *Processor) StorageFault() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.storageFault
}

// FailedAtFrame returns the frame in which the processor failed; it is only
// meaningful when State is StateFailed. For a storage-fault halt raised
// through the store's fault sink the processor has no frame counter, so the
// recorded value is the store's commit version at the halt — which tracks
// the number of frames the processor spent alive, not the wall-clock frame.
func (p *Processor) FailedAtFrame() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.failedAtFrame
}

// Repair restarts a failed or powered-off processor. Volatile storage starts
// empty; stable storage retains its last committed contents, which is what a
// restarted processor recovers from.
func (p *Processor) Repair() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.state = StateRunning
	clear(p.volatile)
}

// SetLowPower switches between full-capacity and low-power operation. It
// returns ErrFailed if the processor is not alive.
func (p *Processor) SetLowPower(low bool) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.state == StateFailed || p.state == StateOff {
		return fmt.Errorf("%w: %s", ErrFailed, p.id)
	}
	if low {
		p.state = StateLowPower
	} else {
		p.state = StateRunning
	}
	return nil
}

// PowerOff performs an orderly shutdown: volatile storage is flushed
// (cleared) and the processor stops consuming resources. Stable storage is
// preserved.
func (p *Processor) PowerOff() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.state == StateFailed {
		return
	}
	p.state = StateOff
	clear(p.volatile)
}

// PutVolatile stores a value in volatile storage. It returns ErrFailed if
// the processor cannot execute.
func (p *Processor) PutVolatile(key string, val []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.state != StateRunning && p.state != StateLowPower {
		return fmt.Errorf("%w: %s", ErrFailed, p.id)
	}
	cp := make([]byte, len(val))
	copy(cp, val)
	p.volatile[key] = cp
	return nil
}

// GetVolatile reads a value from volatile storage.
func (p *Processor) GetVolatile(key string) ([]byte, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	v, ok := p.volatile[key]
	if !ok {
		return nil, false
	}
	cp := make([]byte, len(v))
	copy(cp, v)
	return cp, true
}

// Computation is one replica of a self-checked computation: it returns the
// bytes that will be compared against the sibling replica's output.
type Computation func() ([]byte, error)

// SelfCheckingPair realizes fail-stop semantics for a processor by running
// every computation twice and halting the processor on any divergence — the
// classic construction the paper cites as "an example fail-stop processor
// might be a self-checking pair".
type SelfCheckingPair struct {
	proc *Processor
}

// NewSelfCheckingPair wraps proc in a self-checking pair.
func NewSelfCheckingPair(proc *Processor) *SelfCheckingPair {
	return &SelfCheckingPair{proc: proc}
}

// Run executes both replicas concurrently and compares their outputs. On
// agreement it returns the common output. On divergence or on any replica
// error it fails the underlying processor at the given frame (fail-stop) and
// returns an error wrapping ErrDivergence.
func (sc *SelfCheckingPair) Run(frame int64, replicaA, replicaB Computation) ([]byte, error) {
	if !sc.proc.Alive() {
		return nil, fmt.Errorf("%w: %s", ErrFailed, sc.proc.ID())
	}
	type result struct {
		out []byte
		err error
	}
	resB := make(chan result, 1)
	//lint:allow nofreegoroutine audited launch: replica B runs for exactly one computation and is joined on resB before Run returns
	go func() {
		out, err := replicaB()
		resB <- result{out, err}
	}()
	outA, errA := replicaA()
	rb := <-resB
	if errA != nil || rb.err != nil {
		sc.proc.Fail(frame)
		return nil, fmt.Errorf("%w: replica error (a=%v, b=%v)", ErrDivergence, errA, rb.err)
	}
	if !bytes.Equal(outA, rb.out) {
		sc.proc.Fail(frame)
		return nil, fmt.Errorf("%w: outputs differ on processor %s", ErrDivergence, sc.proc.ID())
	}
	return outA, nil
}

// Pool is the set of processors making up the computing platform, with
// helpers for static placement and post-failure polling.
type Pool struct {
	mu    sync.Mutex
	procs map[spec.ProcID]*Processor
	order []spec.ProcID
	// ordered caches the processors in identifier order. The pool's
	// membership is fixed at construction (dynamic membership changes the
	// view over the pool, not the pool itself), so the slice is built once
	// and shared by every Procs call.
	ordered []*Processor
}

// NewPool builds a pool from a platform description. Every processor starts
// running with empty, assumed-perfect storage.
func NewPool(platform spec.Platform) *Pool {
	return NewPoolWithStores(platform, nil)
}

// NewPoolWithStores builds a pool whose processors use the stores returned
// by mk — the hook through which hardened (replicated, checksummed) stable
// storage is mounted. A nil mk (or a nil store from mk) gives the default
// in-memory store.
func NewPoolWithStores(platform spec.Platform, mk func(spec.ProcID) *stable.Store) *Pool {
	pool := &Pool{procs: make(map[spec.ProcID]*Processor, len(platform.Procs))}
	for _, pd := range platform.Procs {
		var st *stable.Store
		if mk != nil {
			st = mk(pd.ID)
		}
		pool.procs[pd.ID] = NewProcessor(pd.ID, pd.Capacity, pd.LowPowerCapacity, st)
		pool.order = append(pool.order, pd.ID)
	}
	sort.Slice(pool.order, func(i, j int) bool { return pool.order[i] < pool.order[j] })
	pool.ordered = make([]*Processor, 0, len(pool.order))
	for _, id := range pool.order {
		pool.ordered = append(pool.ordered, pool.procs[id])
	}
	return pool
}

// Proc returns the processor with the given ID.
func (pl *Pool) Proc(id spec.ProcID) (*Processor, error) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	p, ok := pl.procs[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownProc, id)
	}
	return p, nil
}

// Procs returns every processor in identifier order. The returned slice is
// shared (the pool's membership is fixed at construction); callers must not
// modify it.
func (pl *Pool) Procs() []*Processor {
	return pl.ordered
}

// Fail fails the named processor at the given frame.
func (pl *Pool) Fail(id spec.ProcID, frame int64) error {
	p, err := pl.Proc(id)
	if err != nil {
		return err
	}
	p.Fail(frame)
	return nil
}

// Repair repairs the named processor.
func (pl *Pool) Repair(id spec.ProcID) error {
	p, err := pl.Proc(id)
	if err != nil {
		return err
	}
	p.Repair()
	return nil
}

// Alive returns the identifiers of processors that can execute, in order.
func (pl *Pool) Alive() []spec.ProcID {
	var alive []spec.ProcID
	for _, p := range pl.Procs() {
		if p.Alive() {
			alive = append(alive, p.ID())
		}
	}
	return alive
}

// AliveCapacity returns the summed effective capacity of all alive
// processors.
func (pl *Pool) AliveCapacity() spec.Resources {
	var total spec.Resources
	for _, p := range pl.Procs() {
		total = total.Add(p.EffectiveCapacity())
	}
	return total
}

// PollStable returns a snapshot of the named processor's committed stable
// storage. It works regardless of the processor's state: polling the stable
// storage of failed processors is exactly how survivors learn the failed
// processor's last consistent state.
func (pl *Pool) PollStable(id spec.ProcID) (map[string][]byte, error) {
	p, err := pl.Proc(id)
	if err != nil {
		return nil, err
	}
	return p.Stable().Snapshot(), nil
}
