package stable

import "sort"

// Medium is one raw storage device under the hardened store: the unreliable
// physical component from which dependable stable storage is constructed.
// A Medium stores opaque record bytes; it knows nothing about checksums or
// commits. Implementations need not be concurrency-safe — the ReplicatedStore
// serializes all access.
type Medium interface {
	// Read returns the raw bytes stored under key. The returned slice must
	// be a copy (or otherwise safe for the caller to inspect).
	Read(key string) ([]byte, bool)
	// Write stores raw bytes under key. A non-nil error models a device
	// write fault: the write did not happen, and the store must assume
	// nothing about subsequent writes until the frame ends.
	Write(key string, raw []byte) error
	// Delete removes key, if present.
	Delete(key string)
	// Keys returns every stored key, sorted.
	Keys() []string
	// EndFrame advances the medium's fault clock at the frame boundary:
	// transient fault state (a torn-write outage) clears, and wear faults
	// (bit rot) for the next frame are applied.
	EndFrame()
}

// MemMedium is a perfect in-memory Medium.
type MemMedium struct {
	data map[string][]byte
}

// NewMemMedium returns an empty perfect medium.
func NewMemMedium() *MemMedium {
	return &MemMedium{data: make(map[string][]byte)}
}

// Read implements Medium.
func (m *MemMedium) Read(key string) ([]byte, bool) {
	raw, ok := m.data[key]
	if !ok {
		return nil, false
	}
	cp := make([]byte, len(raw))
	copy(cp, raw)
	return cp, true
}

// Write implements Medium; a perfect medium never fails a write.
func (m *MemMedium) Write(key string, raw []byte) error {
	cp := make([]byte, len(raw))
	copy(cp, raw)
	m.data[key] = cp
	return nil
}

// Delete implements Medium.
func (m *MemMedium) Delete(key string) { delete(m.data, key) }

// Keys implements Medium.
func (m *MemMedium) Keys() []string {
	keys := make([]string, 0, len(m.data))
	for k := range m.data {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// EndFrame implements Medium; a perfect medium has no fault clock.
func (m *MemMedium) EndFrame() {}
