package stable

import (
	"bytes"
	"errors"
	"sync"
	"testing"
)

func TestRecordCodecRoundTrip(t *testing.T) {
	for _, rec := range []record{
		{version: 1, payload: []byte("hello")},
		{version: 1 << 40, payload: nil},
		{version: 7, tombstone: true},
	} {
		got, err := decodeRecord(encodeRecord(rec))
		if err != nil {
			t.Fatalf("decode(%+v): %v", rec, err)
		}
		if got.version != rec.version || got.tombstone != rec.tombstone || !bytes.Equal(got.payload, rec.payload) {
			t.Errorf("round trip %+v -> %+v", rec, got)
		}
	}
}

func TestRecordCodecDetectsCorruption(t *testing.T) {
	raw := encodeRecord(record{version: 3, payload: []byte("payload")})
	for i := range raw {
		bad := make([]byte, len(raw))
		copy(bad, raw)
		bad[i] ^= 0x40
		if _, err := decodeRecord(bad); err == nil {
			t.Fatalf("flip at byte %d went undetected", i)
		}
	}
	if _, err := decodeRecord(raw[:recordHeaderLen-1]); err == nil {
		t.Error("truncated record went undetected")
	}
}

func TestCommitRecordRoundTrip(t *testing.T) {
	v, err := decodeCommitRecord(encodeCommitRecord(42))
	if err != nil || v != 42 {
		t.Fatalf("commit record round trip = %d, %v", v, err)
	}
	raw := encodeCommitRecord(42)
	raw[recordHeaderLen] ^= 1
	if _, err := decodeCommitRecord(raw); err == nil {
		t.Error("corrupt commit record went undetected")
	}
}

// TestHardenedMatchesPlain runs the same operation sequence against a plain
// store and a hardened store over perfect media; the committed views must
// agree at every step.
func TestHardenedMatchesPlain(t *testing.T) {
	plain := NewStore()
	hard := NewHardened(NewReplicatedStore(NewMemMedium(), NewMemMedium(), NewMemMedium()))
	step := func(op func(s *Store)) {
		op(plain)
		op(hard)
	}
	check := func() {
		t.Helper()
		ps, hs := plain.Snapshot(), hard.Snapshot()
		if len(ps) != len(hs) {
			t.Fatalf("snapshots differ: plain %v, hardened %v", ps, hs)
		}
		for k, v := range ps {
			if hv, ok := hs[k]; !ok || !bytes.Equal(v, hv) {
				t.Fatalf("key %q: plain %q, hardened %q (ok=%v)", k, v, hv, ok)
			}
		}
		pk, hk := plain.Keys("a/"), hard.Keys("a/")
		if len(pk) != len(hk) {
			t.Fatalf("keys differ: %v vs %v", pk, hk)
		}
	}

	step(func(s *Store) { s.Put("a/x", []byte("1")); s.Put("a/y", []byte("2")) })
	step(func(s *Store) { s.Commit() })
	check()
	step(func(s *Store) { s.Put("a/x", []byte("3")); s.Put("b/z", []byte("4")); s.Delete("a/y") })
	step(func(s *Store) { s.Commit() })
	check()
	step(func(s *Store) { s.Put("ghost", []byte("5")) })
	step(func(s *Store) { s.Discard() })
	step(func(s *Store) { s.Commit() })
	check()
	if v, ok := hard.Get("a/x"); !ok || string(v) != "3" {
		t.Fatalf("hardened Get(a/x) = %q, %v", v, ok)
	}
	if _, ok := hard.Get("a/y"); ok {
		t.Fatal("deleted key still readable on hardened store")
	}
}

// corruptOn flips a bit in key's record on medium m.
func corruptOn(t *testing.T, m Medium, key string) {
	t.Helper()
	raw, ok := m.Read(key)
	if !ok {
		t.Fatalf("key %q absent on medium", key)
	}
	raw[len(raw)-1] ^= 1
	if err := m.Write(key, raw); err != nil {
		t.Fatalf("corrupting write: %v", err)
	}
}

func TestReadRepairFixesSingleReplica(t *testing.T) {
	media := []Medium{NewMemMedium(), NewMemMedium(), NewMemMedium()}
	rep := NewReplicatedStore(media...)
	st := NewHardened(rep)
	st.Put("k", []byte("value"))
	st.Commit()

	corruptOn(t, media[1], "k")
	v, ok := st.Get("k")
	if !ok || string(v) != "value" {
		t.Fatalf("Get after single-replica corruption = %q, %v", v, ok)
	}
	stats := rep.Stats()
	if stats.CorruptionsDetected == 0 || stats.ReadRepairs == 0 {
		t.Fatalf("no detection/repair recorded: %+v", stats)
	}
	// The replica must actually hold the repaired record now.
	raw, _ := media[1].Read("k")
	if rec, err := decodeRecord(raw); err != nil || string(rec.payload) != "value" {
		t.Fatalf("replica 1 not repaired: %v", err)
	}
}

func TestAllReplicasCorruptHaltsViaSink(t *testing.T) {
	media := []Medium{NewMemMedium(), NewMemMedium()}
	rep := NewReplicatedStore(media...)
	st := NewHardened(rep)
	var sunk error
	st.SetFaultSink(func(err error) { sunk = err })
	st.Put("k", []byte("value"))
	st.Commit()

	corruptOn(t, media[0], "k")
	corruptOn(t, media[1], "k")
	if _, ok := st.Get("k"); ok {
		t.Fatal("corrupt-everywhere key still readable")
	}
	if !errors.Is(sunk, ErrUnrecoverable) {
		t.Fatalf("fault sink got %v, want ErrUnrecoverable", sunk)
	}
	if rep.Stats().Unrecoverable == 0 {
		t.Error("unrecoverable not counted")
	}
}

// TestStaleReplicaCannotMaskNewerData is the silent-wrong-data regression:
// a replica left behind by a torn write holds a valid-looking old record; if
// the up-to-date copies rot, the store must halt rather than serve the stale
// survivor.
func TestStaleReplicaCannotMaskNewerData(t *testing.T) {
	media := []Medium{NewMemMedium(), NewMemMedium(), NewMemMedium()}
	rep := NewReplicatedStore(media...)
	st := NewHardened(rep)
	st.Put("k", []byte("old"))
	st.Commit()

	// Snapshot replica 0 at the old version, then update the key.
	oldRec, _ := media[0].Read("k")
	oldCommit, _ := media[0].Read(commitRecordKey)
	st.Put("k", []byte("new"))
	st.Commit()
	// Replica 0 "tears back" to its old state: valid record, stale commit.
	if err := media[0].Write("k", oldRec); err != nil {
		t.Fatal(err)
	}
	if err := media[0].Write(commitRecordKey, oldCommit); err != nil {
		t.Fatal(err)
	}
	// The caught-up copies rot.
	corruptOn(t, media[1], "k")
	corruptOn(t, media[2], "k")

	var sunk error
	st.SetFaultSink(func(err error) { sunk = err })
	if v, ok := st.Get("k"); ok {
		t.Fatalf("stale data served as current: %q", v)
	}
	if !errors.Is(sunk, ErrUnrecoverable) {
		t.Fatalf("fault sink got %v, want ErrUnrecoverable", sunk)
	}
}

// TestStaleReplicaServesOldKeysSafely: a key that predates every surviving
// replica's tear is still readable from a stale replica — falling back is
// safe exactly when no caught-up replica ever held the key.
func TestTombstoneStopsResurrection(t *testing.T) {
	media := []Medium{NewMemMedium(), NewMemMedium()}
	rep := NewReplicatedStore(media...)
	st := NewHardened(rep)
	st.Put("k", []byte("value"))
	st.Commit()
	st.Delete("k")
	st.Commit()

	if _, ok := st.Get("k"); ok {
		t.Fatal("deleted key readable")
	}
	// Both media still hold a record for k — the tombstone, not absence, so
	// a stale pre-delete replica can never resurrect the value.
	for i, m := range media {
		raw, ok := m.Read("k")
		if !ok {
			t.Fatalf("medium %d dropped the tombstone", i)
		}
		rec, err := decodeRecord(raw)
		if err != nil || !rec.tombstone {
			t.Fatalf("medium %d record = %+v, %v; want tombstone", i, rec, err)
		}
	}
	if keys := st.Keys(""); len(keys) != 0 {
		t.Fatalf("Keys = %v, want none", keys)
	}
	if snap := st.Snapshot(); len(snap) != 0 {
		t.Fatalf("Snapshot = %v, want empty", snap)
	}
}

func TestTornWriteLeavesReplicaBehindScrubRepairs(t *testing.T) {
	fm := NewFaultyMedium(1, FaultProfile{})
	good := NewMemMedium()
	rep := NewReplicatedStore(fm, good)
	st := NewHardened(rep)
	st.Put("k", []byte("v1"))
	st.Commit()

	// Tear the faulty medium for the rest of the frame, then commit.
	fm.torn = true
	st.Put("k", []byte("v2"))
	if st.Commit() != 2 {
		t.Fatal("commit lost despite one healthy replica")
	}
	if rep.Stats().TornReplicaCommits == 0 {
		t.Error("torn replica commit not counted")
	}
	if v, ok := st.Get("k"); !ok || string(v) != "v2" {
		t.Fatalf("Get = %q, %v; want v2 from healthy replica", v, ok)
	}

	// The first scrub ends the frame (clearing the torn state); the medium
	// is writable again on the next frame, whose scrub repairs it.
	if _, err := st.Scrub(); err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if _, err := st.Scrub(); err != nil {
		t.Fatalf("second scrub: %v", err)
	}
	raw, _ := fm.inner.Read("k")
	rec, err := decodeRecord(raw)
	if err != nil || string(rec.payload) != "v2" {
		t.Fatalf("torn replica not scrub-repaired: %+v, %v", rec, err)
	}
	if rep.Stats().StaleCommitRecords == 0 {
		t.Error("stale commit record not refreshed")
	}
}

func TestCommitLostOnAllReplicasHalts(t *testing.T) {
	fms := []*FaultyMedium{NewFaultyMedium(1, FaultProfile{}), NewFaultyMedium(2, FaultProfile{})}
	rep := NewReplicatedStore(fms[0], fms[1])
	st := NewHardened(rep)
	var sunk error
	st.SetFaultSink(func(err error) { sunk = err })
	st.Put("k", []byte("v1"))
	st.Commit()

	fms[0].torn = true
	fms[1].torn = true
	st.Put("k", []byte("v2"))
	if got := st.Commit(); got != 1 {
		t.Fatalf("version advanced to %d past a wholly lost commit", got)
	}
	if !errors.Is(sunk, ErrUnrecoverable) {
		t.Fatalf("fault sink got %v, want ErrUnrecoverable", sunk)
	}
	// Committed state survives at the old version.
	if v, ok := st.Get("k"); !ok || string(v) != "v1" {
		t.Fatalf("Get after lost commit = %q, %v; want v1", v, ok)
	}
}

// TestCommitDoesNotStampStaleReplica: a replica that missed an earlier
// batch must not be stamped caught up by a later commit it fully absorbs —
// it may still hold stale records for keys outside that batch. If it were
// stamped, rot on the genuinely current copies would let the stale record
// read back as current (silent wrong data); instead the store must halt.
func TestCommitDoesNotStampStaleReplica(t *testing.T) {
	fm := NewFaultyMedium(1, FaultProfile{})
	good := NewMemMedium()
	rep := NewReplicatedStore(good, fm)
	st := NewHardened(rep)
	var sunk error
	st.SetFaultSink(func(err error) { sunk = err })

	st.Put("y", []byte("old"))
	st.Commit() // v1: both replicas hold y
	fm.torn = true
	st.Put("y", []byte("new"))
	st.Commit() // v2 tears on fm: it keeps y@1 and commit record @1
	fm.torn = false

	// v3's batch has no y; fm absorbs it fully yet must stay unstamped.
	st.Put("z", []byte("3"))
	st.Commit()
	raw, ok := fm.inner.Read(commitRecordKey)
	if !ok {
		t.Fatal("stale replica has no commit record")
	}
	if v, err := decodeCommitRecord(raw); err != nil || v != 1 {
		t.Fatalf("stale replica's commit record = %d, %v; want 1", v, err)
	}

	// The current copy of y rots: a read must halt, not serve fm's y@1.
	corruptOn(t, good, "y")
	if v, ok := st.Get("y"); ok {
		t.Fatalf("stale data served as current: %q", v)
	}
	if !errors.Is(sunk, ErrUnrecoverable) {
		t.Fatalf("fault sink got %v, want ErrUnrecoverable", sunk)
	}
}

// TestScrubDoesNotStampUnrepairedReplica: a scrub pass whose repair writes
// fault on a medium must leave that medium's commit record behind (and not
// count a refresh), or its unrepaired records would become authoritative.
func TestScrubDoesNotStampUnrepairedReplica(t *testing.T) {
	fm := NewFaultyMedium(1, FaultProfile{})
	good := NewMemMedium()
	rep := NewReplicatedStore(good, fm)
	st := NewHardened(rep)
	st.Put("k", []byte("v1"))
	st.Commit()
	fm.torn = true
	st.Put("k", []byte("v2"))
	st.Commit() // fm left behind at v1

	// The scrub runs while fm still rejects writes: the repair fails, so
	// the stale commit record must not be refreshed or counted.
	if _, err := st.Scrub(); err != nil {
		t.Fatalf("scrub: %v", err)
	}
	raw, ok := fm.inner.Read(commitRecordKey)
	if !ok {
		t.Fatal("fm lost its commit record")
	}
	if v, err := decodeCommitRecord(raw); err != nil || v != 1 {
		t.Fatalf("unrepaired replica stamped: commit record = %d, %v", v, err)
	}
	if got := rep.Stats().StaleCommitRecords; got != 0 {
		t.Errorf("failed refresh counted as performed: %d", got)
	}

	// Next frame the device recovers: the scrub repairs, then stamps.
	if _, err := st.Scrub(); err != nil {
		t.Fatalf("second scrub: %v", err)
	}
	raw, _ = fm.inner.Read(commitRecordKey)
	if v, err := decodeCommitRecord(raw); err != nil || v != rep.Version() {
		t.Fatalf("recovered replica not stamped: commit record = %d, %v; want %d", v, err, rep.Version())
	}
	if got := rep.Stats().StaleCommitRecords; got != 1 {
		t.Errorf("StaleCommitRecords = %d, want 1", got)
	}
}

// TestScrubSkippedKeyBlocksStamp: a key exempted from scrub repair by a
// staged deletion still blocks the caught-up stamp of a stale medium whose
// copy of it diverges.
func TestScrubSkippedKeyBlocksStamp(t *testing.T) {
	fm := NewFaultyMedium(1, FaultProfile{})
	good := NewMemMedium()
	rep := NewReplicatedStore(good, fm)
	st := NewHardened(rep)
	st.Put("k", []byte("v1"))
	st.Commit()
	fm.torn = true
	st.Put("k", []byte("v2"))
	st.Commit() // fm stale, its copy of k divergent
	fm.torn = false

	st.Delete("k") // k is doomed: the scrub skips repairing it
	if _, err := st.Scrub(); err != nil {
		t.Fatalf("scrub: %v", err)
	}
	raw, ok := fm.inner.Read(commitRecordKey)
	if !ok {
		t.Fatal("fm has no commit record")
	}
	if v, err := decodeCommitRecord(raw); err != nil || v != 1 {
		t.Fatalf("stale replica stamped past a divergent doomed key: commit record = %d, %v", v, err)
	}
}

// TestConcurrentCommitsSerialize drives Commit from several goroutines; the
// commit-serializing lock must hand each one a distinct version (run under
// -race to check the backend never sees duplicate version numbers).
func TestConcurrentCommitsSerialize(t *testing.T) {
	rep := NewReplicatedStore(NewMemMedium(), NewMemMedium())
	st := NewHardened(rep)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				st.Put("k", []byte{byte(g), byte(i)})
				st.Commit()
			}
		}(g)
	}
	wg.Wait()
	if v := st.Version(); v != 100 {
		t.Fatalf("store version = %d, want 100", v)
	}
	if v := rep.Version(); v != 100 {
		t.Fatalf("backend version = %d, want 100", v)
	}
}

func TestStuckReadDoesNotDamageStorage(t *testing.T) {
	fm := NewFaultyMedium(3, FaultProfile{StuckReadRate: 1})
	good := NewMemMedium()
	rep := NewReplicatedStore(fm, good)
	st := NewHardened(rep)
	st.Put("k", []byte("value"))
	st.Commit()

	for i := 0; i < 5; i++ {
		if v, ok := st.Get("k"); !ok || string(v) != "value" {
			t.Fatalf("Get %d = %q, %v", i, v, ok)
		}
	}
	if fm.Stats().StuckReads == 0 {
		t.Fatal("stuck reads never injected")
	}
	// The stored record itself is intact: stuck bits hit the read copy only.
	raw, _ := fm.inner.Read("k")
	if _, err := decodeRecord(raw); err != nil {
		t.Fatalf("stuck read damaged stored record: %v", err)
	}
}

func TestOracleCleanUnderSustainedFaults(t *testing.T) {
	prof := MediaProfile{
		Replicas: 3,
		Seed:     99,
		Faults:   FaultProfile{TornWriteRate: 0.05, BitRotRate: 0.2, StuckReadRate: 0.1},
		Oracle:   true,
	}
	st := NewHardenedStore(prof, "test")
	halted := false
	st.SetFaultSink(func(error) { halted = true })
	keys := []string{"a", "b", "c", "d"}
	for frame := 0; frame < 200 && !halted; frame++ {
		for i, k := range keys {
			if (frame+i)%3 == 0 {
				st.Put(k, []byte{byte(frame), byte(i)})
			}
			st.Get(k)
		}
		st.Commit()
		st.Scrub()
	}
	if got := st.Hardened().Stats().SilentWrongData; got != 0 {
		t.Fatalf("silent wrong data = %d, want 0", got)
	}
	if st.Hardened().InjectedStats() == (MediumStats{}) {
		t.Fatal("no faults injected; test is vacuous")
	}
}

func TestHardenedStoreDeterministicUnderSeed(t *testing.T) {
	run := func() (ReplStats, MediumStats) {
		st := NewHardenedStore(MediaProfile{
			Replicas: 3, Seed: 7,
			Faults: FaultProfile{TornWriteRate: 0.1, BitRotRate: 0.2, StuckReadRate: 0.1},
		}, "proc")
		for frame := 0; frame < 100; frame++ {
			st.Put("x", []byte{byte(frame)})
			st.Get("x")
			st.Commit()
			st.Scrub()
		}
		return st.Hardened().Stats(), st.Hardened().InjectedStats()
	}
	s1, i1 := run()
	s2, i2 := run()
	if s1 != s2 || i1 != i2 {
		t.Errorf("same seed diverged: %+v/%+v vs %+v/%+v", s1, i1, s2, i2)
	}
}

func TestSingleReplicaDetectsButCannotRepair(t *testing.T) {
	m := NewMemMedium()
	rep := NewReplicatedStore(m)
	st := NewHardened(rep)
	var sunk error
	st.SetFaultSink(func(err error) { sunk = err })
	st.Put("k", []byte("value"))
	st.Commit()
	corruptOn(t, m, "k")
	if _, ok := st.Get("k"); ok {
		t.Fatal("corrupt single-replica key readable")
	}
	if !errors.Is(sunk, ErrUnrecoverable) {
		t.Fatalf("fault sink got %v, want ErrUnrecoverable", sunk)
	}
}
