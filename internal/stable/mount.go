package stable

// Remounting: a ReplicatedStore built by NewReplicatedStore assumes fresh
// media and starts at version 0, which makes every pre-existing record look
// like it came from the future — readCandidates rejects versions ahead of
// the store's own as corrupt. MountReplicatedStore recovers the version
// first, so a store can reopen media written by a previous incarnation of
// the process (the fleet manifest surviving a fleetd crash).

// MountReplicatedStore opens a replicated store over media that may carry a
// previous incarnation's committed state. It adopts the highest intact
// commit-record version found on any replica: replicas behind that version
// tore their last commit and are healed by ordinary read repair; corrupt or
// absent commit records on individual replicas are tolerated as long as one
// replica's survives. Fresh media mount at version 0, identical to
// NewReplicatedStore.
func MountReplicatedStore(media ...Medium) *ReplicatedStore {
	r := NewReplicatedStore(media...)
	var v uint64
	for _, m := range r.media {
		raw, ok := m.Read(commitRecordKey)
		if !ok {
			continue
		}
		mv, err := decodeCommitRecord(raw)
		if err != nil {
			continue // torn commit record: this replica heals by repair
		}
		if mv > v {
			v = mv
		}
	}
	r.mu.Lock()
	r.version = v
	r.mu.Unlock()
	return r
}
