package stable

import (
	"os"
	"path/filepath"
	"testing"
)

func TestFileMediumRoundTrip(t *testing.T) {
	m, err := NewFileMedium(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	keys := []string{
		"plain",
		"manifest/t/s-0/spawn",
		"telemetry/ev/000000000000000a",
		commitRecordKey, // leading NUL must escape cleanly
		"odd %%/..\\key",
	}
	for i, k := range keys {
		if err := m.Write(k, []byte{byte(i), 0xff, 0x00}); err != nil {
			t.Fatalf("write %q: %v", k, err)
		}
	}
	for i, k := range keys {
		raw, ok := m.Read(k)
		if !ok {
			t.Fatalf("read %q: missing", k)
		}
		if len(raw) != 3 || raw[0] != byte(i) {
			t.Fatalf("read %q: got % x", k, raw)
		}
	}
	got := m.Keys()
	if len(got) != len(keys) {
		t.Fatalf("Keys() = %v, want %d keys", got, len(keys))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1] >= got[i] {
			t.Fatalf("Keys() not sorted: %v", got)
		}
	}
	m.Delete(keys[0])
	if _, ok := m.Read(keys[0]); ok {
		t.Fatalf("read after delete: still present")
	}
	if len(m.Keys()) != len(keys)-1 {
		t.Fatalf("Keys() after delete = %v", m.Keys())
	}
}

func TestFileMediumKeyEncodingBijective(t *testing.T) {
	keys := []string{"a/b", "a%2fb", "a%b", "\x00commit", "%", "%%25", "..", "a b"}
	seen := map[string]string{}
	for _, k := range keys {
		name := encodeKey(k)
		if prev, dup := seen[name]; dup {
			t.Fatalf("keys %q and %q collide as %q", prev, k, name)
		}
		seen[name] = k
		back, ok := decodeKey(name)
		if !ok || back != k {
			t.Fatalf("decode(encode(%q)) = %q, %v", k, back, ok)
		}
	}
	if _, ok := decodeKey("#stage-123456"); ok {
		// temp-file droppings must not decode into phantom keys
		t.Fatal("temp filename decoded as a key")
	}
	if _, ok := decodeKey("bad%zz"); ok {
		t.Fatal("malformed escape decoded")
	}
}

func TestFileMediumIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	m, err := NewFileMedium(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Write("real", []byte("x")); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "#stage-leftover"), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if got := m.Keys(); len(got) != 1 || got[0] != "real" {
		t.Fatalf("Keys() = %v, want [real]", got)
	}
}

// TestMountReplicatedStoreRecoversVersion is the crash-restart contract at
// the storage layer: a hardened store committed over file media, abandoned
// without any shutdown, and remounted by a fresh process-equivalent must
// serve the committed state and continue the version sequence.
func TestMountReplicatedStoreRecoversVersion(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir()}
	open := func() *Store {
		media := make([]Medium, len(dirs))
		for i, d := range dirs {
			fm, err := NewFileMedium(d)
			if err != nil {
				t.Fatal(err)
			}
			media[i] = fm
		}
		return NewHardened(MountReplicatedStore(media...))
	}

	st := open()
	st.Put("k1", []byte("v1"))
	v1 := st.Commit()
	st.Put("k2", []byte("v2"))
	st.Delete("k1")
	v2 := st.Commit()
	if v2 != v1+1 {
		t.Fatalf("versions %d, %d", v1, v2)
	}
	// No close, no flush: the process "crashes" here.

	re := open()
	if got := re.Hardened().Version(); got != uint64(v2) {
		t.Fatalf("remounted version = %d, want %d", got, v2)
	}
	if _, ok := re.Get("k1"); ok {
		t.Fatal("deleted key resurrected after remount")
	}
	raw, ok := re.Get("k2")
	if !ok || string(raw) != "v2" {
		t.Fatalf("k2 after remount = %q, %v", raw, ok)
	}
	re.Put("k3", []byte("v3"))
	if v3 := re.Commit(); v3 != v2+1 {
		t.Fatalf("post-remount commit version = %d, want %d", v3, v2+1)
	}
}

// TestMountReplicatedStoreTornCommitRecord corrupts one replica's commit
// record; the mount must adopt the surviving replica's version and read
// repair must heal the torn one.
func TestMountReplicatedStoreTornCommitRecord(t *testing.T) {
	dirs := []string{t.TempDir(), t.TempDir()}
	media := func() []Medium {
		out := make([]Medium, len(dirs))
		for i, d := range dirs {
			fm, err := NewFileMedium(d)
			if err != nil {
				t.Fatal(err)
			}
			out[i] = fm
		}
		return out
	}

	st := NewHardened(MountReplicatedStore(media()...))
	st.Put("k", []byte("v"))
	want := st.Commit()

	// Tear replica 0's commit record mid-write.
	torn := filepath.Join(dirs[0], encodeKey(commitRecordKey))
	raw, err := os.ReadFile(torn)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(torn, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	re := NewHardened(MountReplicatedStore(media()...))
	if got := re.Hardened().Version(); got != uint64(want) {
		t.Fatalf("version with torn commit record = %d, want %d", got, want)
	}
	v, ok := re.Get("k")
	if !ok || string(v) != "v" {
		t.Fatalf("value after torn-record mount = %q, %v", v, ok)
	}
}
