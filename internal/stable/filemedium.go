package stable

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// FileMedium is a directory-backed Medium: one file per key, with the key
// escaped into a flat filename. It is the durability substrate for state
// that must survive the death of the *process* (the fleet manifest), not
// just a simulated processor halt.
//
// Crash model: writes go to a temp file in the same directory and are
// renamed into place, so a key's file is always either the old record, the
// new record, or (after an interrupted rename on a torn filesystem) absent
// or garbage — never a silent splice of both. The medium deliberately does
// not fsync: a SIGKILL of the process leaves the page cache intact, which
// is the fail-stop halt the paper's model permits, and whole-machine power
// loss is out of scope for this layer. Anything that does tear is caught by
// the record CRC above and converged past by the replicated store's read
// repair, exactly like a simulated medium fault.
type FileMedium struct {
	dir string
	err error // first filesystem fault, surfaced on subsequent writes
}

// NewFileMedium opens (creating if needed) a directory-backed medium.
func NewFileMedium(dir string) (*FileMedium, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("stable: file medium %s: %w", dir, err)
	}
	return &FileMedium{dir: dir}, nil
}

// Dir returns the backing directory.
func (m *FileMedium) Dir() string { return m.dir }

// fileSafe are the key bytes kept verbatim in filenames. Everything else
// (including '/', '%', and the NUL that prefixes the commit record key) is
// escaped as %XX, so distinct keys always map to distinct flat filenames.
func fileSafe(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' ||
		b == '.' || b == '-' || b == '_'
}

const hexDigits = "0123456789abcdef"

// encodeKey turns a store key into a filename.
func encodeKey(key string) string {
	var sb strings.Builder
	sb.Grow(len(key))
	for i := 0; i < len(key); i++ {
		b := key[i]
		if fileSafe(b) {
			sb.WriteByte(b)
			continue
		}
		sb.WriteByte('%')
		sb.WriteByte(hexDigits[b>>4])
		sb.WriteByte(hexDigits[b&0xf])
	}
	return sb.String()
}

// decodeKey inverts encodeKey; malformed names (stray temp files, foreign
// droppings) report !ok and are ignored by Keys.
func decodeKey(name string) (string, bool) {
	var sb strings.Builder
	sb.Grow(len(name))
	for i := 0; i < len(name); i++ {
		b := name[i]
		if b != '%' {
			if !fileSafe(b) {
				return "", false
			}
			sb.WriteByte(b)
			continue
		}
		if i+2 >= len(name) {
			return "", false
		}
		hi := strings.IndexByte(hexDigits, name[i+1])
		lo := strings.IndexByte(hexDigits, name[i+2])
		if hi < 0 || lo < 0 {
			return "", false
		}
		sb.WriteByte(byte(hi<<4 | lo))
		i += 2
	}
	return sb.String(), true
}

// Read implements Medium. A missing or unreadable file reads as absence;
// garbage content is the CRC layer's problem, as with any medium.
func (m *FileMedium) Read(key string) ([]byte, bool) {
	raw, err := os.ReadFile(filepath.Join(m.dir, encodeKey(key)))
	if err != nil {
		return nil, false
	}
	return raw, true
}

// Write implements Medium with temp-file + rename atomicity. A filesystem
// error is a device write fault: it is returned (and latched, so a sick
// disk keeps reporting) and the replicated store treats the replica as torn
// for this commit.
func (m *FileMedium) Write(key string, raw []byte) error {
	if m.err != nil {
		return m.err
	}
	dst := filepath.Join(m.dir, encodeKey(key))
	// '#' is neither a safe key byte nor the escape character, so no
	// encoded key ever begins with it: temp files can never shadow or
	// decode as keys.
	tmp, err := os.CreateTemp(m.dir, "#stage-*")
	if err != nil {
		m.err = err
		return err
	}
	_, werr := tmp.Write(raw)
	cerr := tmp.Close()
	if werr == nil {
		werr = cerr
	}
	if werr != nil {
		os.Remove(tmp.Name())
		m.err = werr
		return werr
	}
	if err := os.Rename(tmp.Name(), dst); err != nil {
		os.Remove(tmp.Name())
		m.err = err
		return err
	}
	return nil
}

// Delete implements Medium.
func (m *FileMedium) Delete(key string) {
	os.Remove(filepath.Join(m.dir, encodeKey(key)))
}

// Keys implements Medium. FileMedium backs the fleet manifest and CLI
// stores, never the frame-hot scram media; the analyzer reaches it only
// through conservative Medium interface dispatch.
func (m *FileMedium) Keys() []string {
	entries, err := os.ReadDir(m.dir)
	if err != nil {
		return nil
	}
	//lint:allow allocfree off-frame medium: FileMedium serves mount/recovery and the fleet manifest, reached only via conservative Medium dispatch (os.ReadDir above already allocates)
	keys := make([]string, 0, len(entries))
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if key, ok := decodeKey(e.Name()); ok {
			//lint:allow allocfree off-frame medium: same ReadDir-backed listing; growth is bounded by the directory size
			keys = append(keys, key)
		}
	}
	sort.Strings(keys)
	return keys
}

// EndFrame implements Medium; real files have no simulated fault clock.
func (m *FileMedium) EndFrame() {}
