package stable

import (
	"errors"
	"hash/fnv"
	"math/rand"
)

// errTornWrite is the device-level write fault a FaultyMedium raises when it
// tears mid-commit. It is internal to the storage layer: the ReplicatedStore
// absorbs it (the replica is simply behind) unless every replica tears.
var errTornWrite = errors.New("stable: medium write fault (torn)")

// FaultProfile configures the sub-fail-stop fault model of a FaultyMedium.
// These are exactly the faults the paper's clean crash model excludes: the
// hardened store must turn every one of them into either a transparent
// repair or a fail-stop halt, never into silently wrong data.
type FaultProfile struct {
	// TornWriteRate is the per-write probability that the medium loses
	// power mid-commit: the triggering write and every later write in the
	// same frame are lost, leaving the medium with a partially applied
	// batch and a stale commit record.
	TornWriteRate float64
	// BitRotRate is the per-frame probability that one stored record
	// suffers a flipped bit (persistent post-commit corruption).
	BitRotRate float64
	// StuckReadRate is the per-read probability of returning stuck-at
	// bits — a transient read fault that does not damage the stored
	// record.
	StuckReadRate float64
}

// Zero reports whether the profile injects no faults.
func (p FaultProfile) Zero() bool {
	return p.TornWriteRate == 0 && p.BitRotRate == 0 && p.StuckReadRate == 0
}

// MediumStats counts the faults a FaultyMedium actually injected. The
// campaign reports injected counts next to the store's detected/repaired
// counts; a detected count below the injected one is normal (a rotted record
// may be overwritten before anything reads it), silent wrong data is not.
type MediumStats struct {
	// TornWrites counts writes lost to mid-commit tears.
	TornWrites int64 `json:"torn_writes"`
	// BitFlips counts post-commit bit flips applied to stored records.
	BitFlips int64 `json:"bit_flips"`
	// StuckReads counts reads that returned stuck-at bits.
	StuckReads int64 `json:"stuck_reads"`
}

// Add accumulates counts from another medium.
func (s *MediumStats) Add(o MediumStats) {
	s.TornWrites += o.TornWrites
	s.BitFlips += o.BitFlips
	s.StuckReads += o.StuckReads
}

// FaultyMedium wraps a perfect in-memory medium with a seeded fault
// injector. Equal seeds and equal operation sequences give equal fault
// sequences, so campaign runs are reproducible.
type FaultyMedium struct {
	inner   *MemMedium
	rng     *rand.Rand
	profile FaultProfile
	torn    bool // device down for the remainder of the frame
	stats   MediumStats
}

// NewFaultyMedium returns a faulty medium over fresh in-memory storage.
func NewFaultyMedium(seed int64, profile FaultProfile) *FaultyMedium {
	return &FaultyMedium{
		inner:   NewMemMedium(),
		rng:     rand.New(rand.NewSource(seed)),
		profile: profile,
	}
}

// Stats returns the injected-fault counts so far.
func (f *FaultyMedium) Stats() MediumStats { return f.stats }

// Read implements Medium. With probability StuckReadRate the returned copy
// has a bit forced without damaging the stored record.
func (f *FaultyMedium) Read(key string) ([]byte, bool) {
	raw, ok := f.inner.Read(key)
	if !ok {
		return nil, false
	}
	if f.profile.StuckReadRate > 0 && f.rng.Float64() < f.profile.StuckReadRate {
		f.stats.StuckReads++
		raw[f.rng.Intn(len(raw))] ^= 1 << uint(f.rng.Intn(8))
	}
	return raw, true
}

// Write implements Medium. A torn medium stays down until EndFrame.
func (f *FaultyMedium) Write(key string, raw []byte) error {
	if f.torn {
		f.stats.TornWrites++
		return errTornWrite
	}
	if f.profile.TornWriteRate > 0 && f.rng.Float64() < f.profile.TornWriteRate {
		f.torn = true
		f.stats.TornWrites++
		return errTornWrite
	}
	return f.inner.Write(key, raw)
}

// Delete implements Medium.
func (f *FaultyMedium) Delete(key string) { f.inner.Delete(key) }

// Keys implements Medium.
func (f *FaultyMedium) Keys() []string { return f.inner.Keys() }

// EndFrame implements Medium: the torn outage (if any) ends, and bit rot for
// the next frame is applied to one randomly chosen stored record.
func (f *FaultyMedium) EndFrame() {
	f.torn = false
	if f.profile.BitRotRate <= 0 || f.rng.Float64() >= f.profile.BitRotRate {
		return
	}
	keys := f.inner.Keys()
	if len(keys) == 0 {
		return
	}
	key := keys[f.rng.Intn(len(keys))]
	raw, ok := f.inner.Read(key)
	if !ok || len(raw) == 0 {
		return
	}
	raw[f.rng.Intn(len(raw))] ^= 1 << uint(f.rng.Intn(8))
	f.stats.BitFlips++
	// Write through the perfect inner medium: rot damages storage even
	// while the device rejects commit writes.
	//lint:allow stableerr fault injection damages the medium on purpose; MemMedium.Write cannot fail
	_ = f.inner.Write(key, raw)
}

// MediaProfile describes how to build a hardened store: the replica count
// and the fault model of each backing medium. The zero FaultProfile yields
// replicated, checksummed storage over perfect media.
type MediaProfile struct {
	// Replicas is the number of backing media; 0 defaults to 3.
	Replicas int `json:"replicas"`
	// Seed drives each medium's fault injector; the per-medium seed is
	// derived from Seed, the salt, and the replica index.
	Seed int64 `json:"seed"`
	// Faults is the per-medium fault model.
	Faults FaultProfile `json:"faults"`
	// Oracle enables silent-wrong-data accounting: the store mirrors every
	// commit into a perfect shadow map and compares each read against it.
	Oracle bool `json:"oracle"`
}

// mediumSeed derives a deterministic per-medium seed.
func mediumSeed(base int64, salt string, idx int) int64 {
	h := fnv.New64a()
	h.Write([]byte(salt))
	return base + int64(h.Sum64()&0x7FFFFFFF) + int64(idx)*1_000_003
}

// NewHardenedStore builds a Store over a fresh ReplicatedStore configured by
// the profile. The salt (typically the owning processor's identifier) keeps
// different processors' fault sequences independent under one campaign seed.
func NewHardenedStore(profile MediaProfile, salt string) *Store {
	n := profile.Replicas
	if n <= 0 {
		n = 3
	}
	media := make([]Medium, n)
	for i := range media {
		media[i] = NewFaultyMedium(mediumSeed(profile.Seed, salt, i), profile.Faults)
	}
	rep := NewReplicatedStore(media...)
	if profile.Oracle {
		rep.EnableOracle()
	}
	return NewHardened(rep)
}
