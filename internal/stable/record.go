package stable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
)

// The hardened storage layer derives dependable stable storage from
// unreliable media, following the construction Schlichting and Schneider
// describe for stable storage and the paper's section 3 assumption that the
// platform provides it: every committed value is encoded as a self-checking
// record (magic, commit version, CRC32C) so that corruption is *detected*
// rather than returned, and a per-medium commit record pins the version a
// medium has fully absorbed so torn (partially applied) commits are
// detectable after the fact.

// ErrCorrupt reports a record that failed its integrity check: the medium
// returned bytes, but they are not a well-formed checksummed record.
var ErrCorrupt = errors.New("stable: corrupt record")

// ErrUnrecoverable reports corruption that defeated every replica. The owner
// of the store must treat this as a fail-stop failure: halting is the only
// response that preserves the fail-stop abstraction, because returning a
// value would risk silent wrong data.
var ErrUnrecoverable = errors.New("stable: unrecoverable storage fault")

// recordMagic marks the start of an encoded record.
const recordMagic uint32 = 0x57AB1E01

// record flag bits.
const flagTombstone byte = 1 << 0

// recordHeaderLen is magic(4) + flags(1) + version(8) + len(4) + crc(4).
const recordHeaderLen = 4 + 1 + 8 + 4 + 4

// crcTable is the Castagnoli polynomial, the usual choice for storage
// integrity checks.
var crcTable = crc32.MakeTable(crc32.Castagnoli)

// record is one decoded stable-storage record: a committed value (or a
// deletion tombstone) stamped with the commit version that wrote it.
type record struct {
	version   uint64
	tombstone bool
	payload   []byte
}

// encodeRecord serializes a record with its integrity header.
func encodeRecord(r record) []byte {
	out := make([]byte, recordHeaderLen+len(r.payload))
	binary.BigEndian.PutUint32(out[0:4], recordMagic)
	if r.tombstone {
		out[4] = flagTombstone
	}
	binary.BigEndian.PutUint64(out[5:13], r.version)
	binary.BigEndian.PutUint32(out[13:17], uint32(len(r.payload)))
	copy(out[recordHeaderLen:], r.payload)
	crc := crc32.Checksum(out[4:17], crcTable)
	crc = crc32.Update(crc, crcTable, r.payload)
	binary.BigEndian.PutUint32(out[17:21], crc)
	return out
}

// decodeRecord parses and verifies an encoded record. Any mismatch — bad
// magic, short buffer, wrong length, checksum failure — returns ErrCorrupt:
// the detection half of the fail-stop storage construction.
func decodeRecord(raw []byte) (record, error) {
	if len(raw) < recordHeaderLen {
		return record{}, fmt.Errorf("%w: %d bytes, need at least %d", ErrCorrupt, len(raw), recordHeaderLen)
	}
	if binary.BigEndian.Uint32(raw[0:4]) != recordMagic {
		return record{}, fmt.Errorf("%w: bad magic %#x", ErrCorrupt, binary.BigEndian.Uint32(raw[0:4]))
	}
	plen := binary.BigEndian.Uint32(raw[13:17])
	if uint64(len(raw)) != uint64(recordHeaderLen)+uint64(plen) {
		return record{}, fmt.Errorf("%w: payload length %d does not match buffer %d", ErrCorrupt, plen, len(raw))
	}
	want := binary.BigEndian.Uint32(raw[17:21])
	crc := crc32.Checksum(raw[4:17], crcTable)
	crc = crc32.Update(crc, crcTable, raw[recordHeaderLen:])
	if crc != want {
		return record{}, fmt.Errorf("%w: checksum %#x, want %#x", ErrCorrupt, crc, want)
	}
	r := record{
		version:   binary.BigEndian.Uint64(raw[5:13]),
		tombstone: raw[4]&flagTombstone != 0,
	}
	if plen > 0 {
		r.payload = make([]byte, plen)
		copy(r.payload, raw[recordHeaderLen:])
	}
	return r, nil
}

// commitRecordKey is the reserved medium key of the commit record. Store
// keys are application strings and never begin with NUL, so the namespace
// cannot collide.
const commitRecordKey = "\x00commit"

// encodeCommitRecord builds the commit record for a version: a record whose
// payload is the version, written last in every commit batch. A medium whose
// commit record is behind the store's version did not absorb the latest
// commit completely (a torn write).
func encodeCommitRecord(version uint64) []byte {
	payload := make([]byte, 8)
	binary.BigEndian.PutUint64(payload, version)
	return encodeRecord(record{version: version, payload: payload})
}

// decodeCommitRecord returns the version a commit record pins.
func decodeCommitRecord(raw []byte) (uint64, error) {
	rec, err := decodeRecord(raw)
	if err != nil {
		return 0, err
	}
	if len(rec.payload) != 8 {
		return 0, fmt.Errorf("%w: commit record payload %d bytes", ErrCorrupt, len(rec.payload))
	}
	return binary.BigEndian.Uint64(rec.payload), nil
}
