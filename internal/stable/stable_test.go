package stable

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func TestReadCommitted(t *testing.T) {
	s := NewStore()
	s.Put("k", []byte("v1"))
	if _, ok := s.Get("k"); ok {
		t.Fatal("staged write visible before commit")
	}
	s.Commit()
	v, ok := s.Get("k")
	if !ok || string(v) != "v1" {
		t.Fatalf("Get after commit = %q, %v; want v1, true", v, ok)
	}
	s.Put("k", []byte("v2"))
	v, _ = s.Get("k")
	if string(v) != "v1" {
		t.Fatalf("staged overwrite visible before commit: got %q", v)
	}
	s.Commit()
	v, _ = s.Get("k")
	if string(v) != "v2" {
		t.Fatalf("Get after second commit = %q, want v2", v)
	}
}

func TestDeleteStaged(t *testing.T) {
	s := NewStore()
	s.Put("k", []byte("v"))
	s.Commit()
	s.Delete("k")
	if _, ok := s.Get("k"); !ok {
		t.Fatal("delete visible before commit")
	}
	s.Commit()
	if _, ok := s.Get("k"); ok {
		t.Fatal("key present after committed delete")
	}
}

func TestDiscardDropsStagedOnly(t *testing.T) {
	s := NewStore()
	s.Put("a", []byte("committed"))
	s.Commit()
	s.Put("a", []byte("lost"))
	s.Put("b", []byte("lost-too"))
	s.Discard()
	if n := s.PendingWrites(); n != 0 {
		t.Fatalf("PendingWrites after discard = %d, want 0", n)
	}
	s.Commit()
	if v, _ := s.Get("a"); string(v) != "committed" {
		t.Fatalf("a = %q after discard+commit, want committed", v)
	}
	if _, ok := s.Get("b"); ok {
		t.Fatal("discarded write to b survived")
	}
}

func TestVersionAdvancesEveryCommit(t *testing.T) {
	s := NewStore()
	if s.Version() != 0 {
		t.Fatalf("fresh store version = %d, want 0", s.Version())
	}
	for i := uint64(1); i <= 5; i++ {
		if got := s.Commit(); got != i {
			t.Fatalf("commit %d returned version %d", i, got)
		}
	}
}

func TestGetReturnsCopy(t *testing.T) {
	s := NewStore()
	orig := []byte("hello")
	s.Put("k", orig)
	orig[0] = 'X' // caller mutates after Put; store must be unaffected
	s.Commit()
	v, _ := s.Get("k")
	if string(v) != "hello" {
		t.Fatalf("Put did not copy input: got %q", v)
	}
	v[0] = 'Y' // mutate returned slice; store must be unaffected
	v2, _ := s.Get("k")
	if string(v2) != "hello" {
		t.Fatalf("Get did not copy output: got %q", v2)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	s := NewStore()
	s.Put("k", []byte("v"))
	s.Commit()
	snap := s.Snapshot()
	snap["k"][0] = 'X'
	v, _ := s.Get("k")
	if string(v) != "v" {
		t.Fatalf("snapshot aliased committed state: got %q", v)
	}
}

func TestSnapshotExcludesStaged(t *testing.T) {
	s := NewStore()
	s.Put("committed", []byte("1"))
	s.Commit()
	s.Put("staged", []byte("2"))
	snap := s.Snapshot()
	if _, ok := snap["staged"]; ok {
		t.Fatal("snapshot includes staged write")
	}
	if _, ok := snap["committed"]; !ok {
		t.Fatal("snapshot missing committed write")
	}
}

func TestRestoreRequiresCommit(t *testing.T) {
	src := NewStore()
	src.Put("a", []byte("1"))
	src.Put("b", []byte("2"))
	src.Commit()

	dst := NewStore()
	dst.Restore(src.Snapshot())
	if _, ok := dst.Get("a"); ok {
		t.Fatal("restore visible before commit")
	}
	dst.Commit()
	for _, k := range []string{"a", "b"} {
		if _, ok := dst.Get(k); !ok {
			t.Fatalf("restored key %q missing after commit", k)
		}
	}
}

func TestKeysPrefixSorted(t *testing.T) {
	s := NewStore()
	for _, k := range []string{"app/b", "app/a", "sys/x"} {
		s.Put(k, []byte("v"))
	}
	s.Commit()
	got := s.Keys("app/")
	want := []string{"app/a", "app/b"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Keys(app/) = %v, want %v", got, want)
	}
}

func TestTypedHelpers(t *testing.T) {
	s := NewStore()
	s.PutString("s", "hello")
	s.PutInt64("n", -42)
	type payload struct {
		A int    `json:"a"`
		B string `json:"b"`
	}
	if err := s.PutJSON("j", payload{A: 7, B: "x"}); err != nil {
		t.Fatalf("PutJSON: %v", err)
	}
	s.Commit()

	if v, ok := s.GetString("s"); !ok || v != "hello" {
		t.Errorf("GetString = %q, %v", v, ok)
	}
	if n, err := s.GetInt64("n"); err != nil || n != -42 {
		t.Errorf("GetInt64 = %d, %v", n, err)
	}
	var p payload
	if ok, err := s.GetJSON("j", &p); err != nil || !ok || p.A != 7 || p.B != "x" {
		t.Errorf("GetJSON = %+v, %v, %v", p, ok, err)
	}

	if _, err := s.GetInt64("missing"); err == nil {
		t.Error("GetInt64(missing) did not error")
	}
	s.PutString("bad", "not-a-number")
	s.Commit()
	if _, err := s.GetInt64("bad"); err == nil {
		t.Error("GetInt64(bad) did not error")
	}
	if ok, err := s.GetJSON("absent", &p); ok || err != nil {
		t.Errorf("GetJSON(absent) = %v, %v; want false, nil", ok, err)
	}
	s.PutString("badjson", "{")
	s.Commit()
	if _, err := s.GetJSON("badjson", &p); err == nil {
		t.Error("GetJSON(badjson) did not error")
	}
	if err := s.PutJSON("ch", make(chan int)); err == nil {
		t.Error("PutJSON(chan) did not error")
	}
}

func TestRegionIsolation(t *testing.T) {
	s := NewStore()
	r1 := s.Region("app1")
	r2 := s.Region("app2")
	r1.PutString("k", "one")
	r2.PutString("k", "two")
	s.Commit()

	if v, _ := r1.GetString("k"); v != "one" {
		t.Errorf("r1 k = %q, want one", v)
	}
	if v, _ := r2.GetString("k"); v != "two" {
		t.Errorf("r2 k = %q, want two", v)
	}
	if keys := r1.Keys(); len(keys) != 1 || keys[0] != "k" {
		t.Errorf("r1 keys = %v, want [k]", keys)
	}
}

func TestRegionSnapshotRestore(t *testing.T) {
	s := NewStore()
	r := s.Region("ap")
	r.PutString("alt", "1000")
	r.PutInt64("count", 3)
	type gains struct{ P, I float64 }
	if err := r.PutJSON("gains", gains{P: 0.5, I: 0.1}); err != nil {
		t.Fatal(err)
	}
	s.Commit()

	// Migrate the region to another processor's store.
	dst := NewStore()
	dstRegion := dst.Region("ap")
	dstRegion.Restore(r.Snapshot())
	dst.Commit()

	if v, _ := dstRegion.GetString("alt"); v != "1000" {
		t.Errorf("migrated alt = %q", v)
	}
	if n, err := dstRegion.GetInt64("count"); err != nil || n != 3 {
		t.Errorf("migrated count = %d, %v", n, err)
	}
	var g gains
	if ok, err := dstRegion.GetJSON("gains", &g); !ok || err != nil || g.P != 0.5 {
		t.Errorf("migrated gains = %+v, %v, %v", g, ok, err)
	}
	r.Delete("alt")
	s.Commit()
	if _, ok := r.GetString("alt"); ok {
		t.Error("region delete did not take effect")
	}
}

func TestConcurrentStagedWrites(t *testing.T) {
	s := NewStore()
	const workers = 8
	const writes = 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := s.Region(fmt.Sprintf("w%d", w))
			for i := 0; i < writes; i++ {
				r.PutInt64(fmt.Sprintf("k%d", i), int64(i))
				s.Get("anything") // concurrent reads must not race
			}
		}(w)
	}
	wg.Wait()
	s.Commit()
	for w := 0; w < workers; w++ {
		r := s.Region(fmt.Sprintf("w%d", w))
		if keys := r.Keys(); len(keys) != writes {
			t.Fatalf("worker %d: %d keys, want %d", w, len(keys), writes)
		}
	}
}

// TestCrashAtomicityProperty checks the core fail-stop invariant with
// randomized inputs: after staging arbitrary writes and then "crashing"
// (Discard), the committed state is byte-for-byte what the last Commit
// established.
func TestCrashAtomicityProperty(t *testing.T) {
	prop := func(committedVals, stagedVals map[string][]byte) bool {
		s := NewStore()
		for k, v := range committedVals {
			s.Put(k, v)
		}
		s.Commit()
		before := s.Snapshot()
		for k, v := range stagedVals {
			s.Put(k, v)
		}
		// Crash: volatile (staged) contents are lost.
		s.Discard()
		after := s.Snapshot()
		if len(before) != len(after) {
			return false
		}
		for k, v := range before {
			if !bytes.Equal(after[k], v) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestCommitAppliesAllProperty checks that a commit applies exactly the
// staged writes: every staged key has its staged value afterwards and no
// other key changes.
func TestCommitAppliesAllProperty(t *testing.T) {
	prop := func(initial, update map[string][]byte) bool {
		s := NewStore()
		for k, v := range initial {
			s.Put(k, v)
		}
		s.Commit()
		for k, v := range update {
			s.Put(k, v)
		}
		s.Commit()
		snap := s.Snapshot()
		for k, v := range update {
			if !bytes.Equal(snap[k], v) {
				return false
			}
		}
		for k, v := range initial {
			if _, overwritten := update[k]; overwritten {
				continue
			}
			if !bytes.Equal(snap[k], v) {
				return false
			}
		}
		return len(snap) <= len(initial)+len(update)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestStagedLenAndDirty(t *testing.T) {
	s := NewStore()
	if s.StagedLen() != 0 {
		t.Fatalf("fresh store StagedLen = %d", s.StagedLen())
	}
	s.Put("a", []byte("1"))
	s.Put("b", []byte("2"))
	s.Delete("c")
	if got := s.StagedLen(); got != 3 {
		t.Errorf("StagedLen = %d, want 3", got)
	}
	if staged, deleted := s.Dirty("a"); !staged || deleted {
		t.Errorf("Dirty(a) = %v, %v; want staged put", staged, deleted)
	}
	if staged, deleted := s.Dirty("c"); !staged || !deleted {
		t.Errorf("Dirty(c) = %v, %v; want staged delete", staged, deleted)
	}
	if staged, _ := s.Dirty("nope"); staged {
		t.Error("Dirty reports untouched key as staged")
	}
	s.Commit()
	if s.StagedLen() != 0 {
		t.Errorf("StagedLen after commit = %d", s.StagedLen())
	}
	if staged, _ := s.Dirty("a"); staged {
		t.Error("Dirty(a) still staged after commit")
	}
}
