package stable

import (
	"bytes"
	"fmt"
	"sort"
	"sync"

	"repro/internal/telemetry"
)

// ReplStats is a point-in-time view of the hardened store's fault-handling
// counters. The counters themselves live in a telemetry registry (a private
// one until Instrument points the store at the system registry); ReplStats
// is assembled on demand, so there is no duplicated bookkeeping. The
// invariant the fault-injection campaigns check: SilentWrongData is always
// zero — every injected fault is either repaired from a surviving replica
// or surfaces as an unrecoverable fault that halts the owning processor.
type ReplStats struct {
	// Commits is the number of commit batches applied.
	Commits int64 `json:"commits"`
	// TornReplicaCommits counts replica commit batches lost mid-way to a
	// torn write (the replica fell behind and was later repaired).
	TornReplicaCommits int64 `json:"torn_replica_commits"`
	// CorruptionsDetected counts records that failed their integrity
	// check on read or scrub.
	CorruptionsDetected int64 `json:"corruptions_detected"`
	// ReadRepairs counts replica records rewritten from a surviving
	// replica during reads.
	ReadRepairs int64 `json:"read_repairs"`
	// ScrubRepairs counts replica records rewritten by the end-of-frame
	// scrub pass or by a commit-time rescue.
	ScrubRepairs int64 `json:"scrub_repairs"`
	// ScrubRuns counts scrub passes.
	ScrubRuns int64 `json:"scrub_runs"`
	// StaleCommitRecords counts media whose commit record was found
	// behind (or corrupt) and rewritten by the scrub pass.
	StaleCommitRecords int64 `json:"stale_commit_records"`
	// CommitRescues counts commits salvaged by verify-and-repair promotion
	// of a replica that absorbed the batch but was not caught up when no
	// caught-up replica absorbed it.
	CommitRescues int64 `json:"commit_rescues"`
	// Unrecoverable counts faults that defeated every replica: the events
	// that must halt the processor to preserve fail-stop semantics.
	Unrecoverable int64 `json:"unrecoverable"`
	// SilentWrongData counts reads that returned data disagreeing with
	// the oracle without raising a fault. It must be zero; a nonzero
	// count means the fail-stop abstraction was violated.
	SilentWrongData int64 `json:"silent_wrong_data"`
}

// add accumulates counts from another store.
func (s *ReplStats) Add(o ReplStats) {
	s.Commits += o.Commits
	s.TornReplicaCommits += o.TornReplicaCommits
	s.CorruptionsDetected += o.CorruptionsDetected
	s.ReadRepairs += o.ReadRepairs
	s.ScrubRepairs += o.ScrubRepairs
	s.ScrubRuns += o.ScrubRuns
	s.StaleCommitRecords += o.StaleCommitRecords
	s.CommitRescues += o.CommitRescues
	s.Unrecoverable += o.Unrecoverable
	s.SilentWrongData += o.SilentWrongData
}

// ScrubReport summarizes one end-of-frame scrub pass.
type ScrubReport struct {
	// Checked is the number of logical keys examined.
	Checked int
	// Corrupt is the number of invalid replica records found.
	Corrupt int
	// Repaired is the number of replica records rewritten.
	Repaired int
	// StaleCommits is the number of media whose behind (or corrupt) commit
	// record was successfully rewritten.
	StaleCommits int
	// Unrecoverable lists keys whose every replica was corrupt.
	Unrecoverable []string
}

// ReplicatedStore mirrors commits across N backing media, each holding
// checksummed, versioned records. Reads consult every replica and return the
// newest valid record, repairing divergent replicas in passing (read
// repair); a scrub pass re-verifies everything at the frame boundary. It is
// the constructive realization of the stable storage the paper assumes:
// corruption a checksum catches on some replica is repaired transparently,
// corruption that defeats all replicas surfaces as ErrUnrecoverable — which
// the owning fail-stop processor converts into a halt.
//
// A ReplicatedStore is safe for concurrent use.
type ReplicatedStore struct {
	mu      sync.Mutex
	media   []Medium
	version uint64
	oracle  map[string][]byte // nil unless EnableOracle
	c       *replCounters
	tel     telemetry.Sink // the no-op sink until Instrument
	name    string         // host label for flight-recorder events
	// union caches the sorted union of every medium's logical keys, with
	// unionSet as its membership index. The key set can only grow, and only
	// through Commit (deletions are tombstone records; repair, rescue and
	// scrub rewrite keys that already exist), so the cache stays valid until
	// a commit batch introduces an unseen key. Nil means "rebuild".
	union    []string
	unionSet map[string]struct{}
	// keyScratch is the reusable sorted-batch-key buffer for Commit.
	keyScratch []string
}

// replCounters holds the store's pre-resolved metric handles, one per
// ReplStats field.
type replCounters struct {
	commits, tornReplicaCommits, corruptionsDetected, readRepairs,
	scrubRepairs, scrubRuns, staleCommitRecords, commitRescues,
	unrecoverable, silentWrongData *telemetry.Counter
}

// resolveReplCounters binds the store's counters in reg under prefix.
func resolveReplCounters(reg *telemetry.Registry, prefix string) *replCounters {
	return &replCounters{
		commits:             reg.Counter(prefix + "commits"),
		tornReplicaCommits:  reg.Counter(prefix + "torn_replica_commits"),
		corruptionsDetected: reg.Counter(prefix + "corruptions_detected"),
		readRepairs:         reg.Counter(prefix + "read_repairs"),
		scrubRepairs:        reg.Counter(prefix + "scrub_repairs"),
		scrubRuns:           reg.Counter(prefix + "scrub_runs"),
		staleCommitRecords:  reg.Counter(prefix + "stale_commit_records"),
		commitRescues:       reg.Counter(prefix + "commit_rescues"),
		unrecoverable:       reg.Counter(prefix + "unrecoverable"),
		silentWrongData:     reg.Counter(prefix + "silent_wrong_data"),
	}
}

// view assembles the point-in-time ReplStats.
func (c *replCounters) view() ReplStats {
	return ReplStats{
		Commits:             c.commits.Value(),
		TornReplicaCommits:  c.tornReplicaCommits.Value(),
		CorruptionsDetected: c.corruptionsDetected.Value(),
		ReadRepairs:         c.readRepairs.Value(),
		ScrubRepairs:        c.scrubRepairs.Value(),
		ScrubRuns:           c.scrubRuns.Value(),
		StaleCommitRecords:  c.staleCommitRecords.Value(),
		CommitRescues:       c.commitRescues.Value(),
		Unrecoverable:       c.unrecoverable.Value(),
		SilentWrongData:     c.silentWrongData.Value(),
	}
}

// NewReplicatedStore builds a replicated store over the given media. At
// least one medium is required; one medium gives checksummed (detecting but
// not self-repairing) storage. The store counts its fault handling in a
// private registry until Instrument attaches it to the system's.
func NewReplicatedStore(media ...Medium) *ReplicatedStore {
	if len(media) == 0 {
		media = []Medium{NewMemMedium()}
	}
	return &ReplicatedStore{
		media: media,
		c:     resolveReplCounters(telemetry.NewRegistry(), "stable/"),
		tel:   telemetry.NopSink{},
	}
}

// Instrument re-points the store's counters at the shared registry under
// "stable/<name>/" (carrying over counts accumulated so far) and attaches
// the flight recorder, which subsequently receives repair, rescue, scrub
// and unrecoverable-fault events labeled with the host name.
func (r *ReplicatedStore) Instrument(reg *telemetry.Registry, rec *telemetry.Recorder, name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	old := r.c.view()
	r.c = resolveReplCounters(reg, "stable/"+name+"/")
	r.c.commits.Add(old.Commits)
	r.c.tornReplicaCommits.Add(old.TornReplicaCommits)
	r.c.corruptionsDetected.Add(old.CorruptionsDetected)
	r.c.readRepairs.Add(old.ReadRepairs)
	r.c.scrubRepairs.Add(old.ScrubRepairs)
	r.c.scrubRuns.Add(old.ScrubRuns)
	r.c.staleCommitRecords.Add(old.StaleCommitRecords)
	r.c.commitRescues.Add(old.CommitRescues)
	r.c.unrecoverable.Add(old.Unrecoverable)
	r.c.silentWrongData.Add(old.SilentWrongData)
	r.tel = telemetry.OrNop(rec)
	r.name = name
}

// record mirrors a storage event into the flight recorder, when attached.
// Called with r.mu held; the recorder has its own lock and never calls back
// into the store.
func (r *ReplicatedStore) record(e telemetry.Event) {
	if !r.tel.Enabled() {
		return
	}
	e.Host = r.name
	r.tel.Record(e)
}

// EnableOracle turns on silent-wrong-data accounting: every commit is
// mirrored into a perfect shadow map and every read compared against it.
// Enable it before the first commit.
func (r *ReplicatedStore) EnableOracle() {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.oracle == nil {
		r.oracle = make(map[string][]byte)
	}
}

// Stats assembles the fault-handling counters into a point-in-time view.
func (r *ReplicatedStore) Stats() ReplStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.c.view()
}

// InjectedStats sums the injected-fault counts of every backing FaultyMedium.
func (r *ReplicatedStore) InjectedStats() MediumStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out MediumStats
	for _, m := range r.media {
		if fm, ok := m.(*FaultyMedium); ok {
			out.Add(fm.Stats())
		}
	}
	return out
}

// Replicas returns the number of backing media.
func (r *ReplicatedStore) Replicas() int { return len(r.media) }

// Version returns the last fully committed version.
func (r *ReplicatedStore) Version() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.version
}

// candidate is one replica's view of a key during a read.
type candidate struct {
	rec     record
	valid   bool
	present bool // medium returned bytes (valid or not)
}

// readCandidates reads key from every medium. A record is valid when it
// decodes, its checksum holds, and its version is committed (a version ahead
// of the store is a leftover of a commit that failed everywhere).
func (r *ReplicatedStore) readCandidates(key string) []candidate {
	cands := make([]candidate, len(r.media))
	for i, m := range r.media {
		raw, ok := m.Read(key)
		if !ok {
			continue
		}
		cands[i].present = true
		rec, err := decodeRecord(raw)
		if err != nil || rec.version > r.version {
			r.c.corruptionsDetected.Inc()
			continue
		}
		cands[i].rec = rec
		cands[i].valid = true
	}
	return cands
}

// caughtUp reports, per medium, whether its commit record matches the
// store's version. Commit and Scrub both write a medium's data records
// before its commit record, so a matching commit record proves the medium
// absorbed every batch up to the current version — its copy of any key is
// the key's true newest committed write (unless rot damaged it since).
// Before the first commit every medium is trivially caught up.
func (r *ReplicatedStore) caughtUp() (up []bool, any bool) {
	up = make([]bool, len(r.media))
	if r.version == 0 {
		for i := range up {
			up[i] = true
		}
		return up, true
	}
	for i, m := range r.media {
		// A corrupt read is retried once: a stuck read is transient and must
		// not demote a current medium to stale for the whole pass.
		for attempt := 0; attempt < 2; attempt++ {
			raw, ok := m.Read(commitRecordKey)
			if !ok {
				break
			}
			v, err := decodeCommitRecord(raw)
			if err != nil {
				continue
			}
			if v == r.version {
				up[i] = true
				any = true
			}
			break
		}
	}
	return up, any
}

// bestOf reads key's replicas and picks the copy a read may trust. A fatal
// first pass is re-read once before being believed: a stuck read is a
// transient fault that does not damage the stored record, so a second read
// separates it from persistent corruption — which stays fatal.
func (r *ReplicatedStore) bestOf(key string, up []bool, anyUp bool) ([]candidate, int, bool) {
	cands := r.readCandidates(key)
	best, fatal := selectBest(cands, up, anyUp)
	if fatal {
		cands = r.readCandidates(key)
		best, fatal = selectBest(cands, up, anyUp)
	}
	return cands, best, fatal
}

// selectBest picks the candidate a read may trust, or reports that none can
// be (fatal). Only caught-up media are authoritative: a replica left behind
// by a torn write holds valid-looking records that may predate later
// updates, so when every caught-up copy of a key is corrupt the newest
// committed version is unknowable and returning a stale survivor would be
// silent wrong data — exactly the failure a fail-stop store must convert
// into a halt. The fallback to stale media applies only when some medium is
// provably caught up yet none of the caught-up media knows the key at all
// (the key predates every surviving replica's last tear, so no newer write
// can be masked). With no caught-up medium whatsoever, no record can be
// proven current, and any surviving copy is fatal rather than trusted.
func selectBest(cands []candidate, up []bool, anyUp bool) (best int, fatal bool) {
	best = -1
	for i, c := range cands {
		if up[i] && c.valid && (best < 0 || c.rec.version > cands[best].rec.version) {
			best = i
		}
	}
	if best >= 0 {
		return best, false
	}
	if anyUp {
		for i, c := range cands {
			if up[i] && c.present {
				return -1, true
			}
		}
		for i, c := range cands {
			if c.valid && (best < 0 || c.rec.version > cands[best].rec.version) {
				best = i
			}
		}
		if best >= 0 {
			return best, false
		}
	}
	for _, c := range cands {
		if c.present {
			return -1, true
		}
	}
	return -1, false
}

// repairFrom rewrites every replica that disagrees with the winning record.
// Write faults during repair are tolerated: the replica stays behind and the
// next scrub retries. Returns the number of successful repairs; when failed
// is non-nil, any medium whose repair write faulted is marked in it.
func (r *ReplicatedStore) repairFrom(key string, cands []candidate, best int, failed []bool) int {
	win := cands[best].rec
	raw := encodeRecord(win)
	repaired := 0
	for i, c := range cands {
		if i == best || (c.valid && c.rec.version == win.version) {
			continue
		}
		if err := r.media[i].Write(key, raw); err == nil {
			repaired++
		} else if failed != nil {
			failed[i] = true
		}
	}
	return repaired
}

// Get returns the committed value for key, consulting every replica. A
// divergent or corrupt replica is repaired from the newest valid copy on a
// caught-up replica. When no trustworthy copy survives — every caught-up
// replica's copy is corrupt, or no replica holds a valid record at all —
// Get returns ErrUnrecoverable: the caller must halt, because the committed
// data cannot be proven current, absent, or reconstructed.
func (r *ReplicatedStore) Get(key string) ([]byte, bool, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	val, ok, err := r.get(key)
	if r.oracle != nil && err == nil {
		want, wok := r.oracle[key]
		if ok != wok || !bytes.Equal(val, want) {
			r.c.silentWrongData.Inc()
		}
	}
	return val, ok, err
}

func (r *ReplicatedStore) get(key string) ([]byte, bool, error) {
	up, anyUp := r.caughtUp()
	cands, best, fatal := r.bestOf(key, up, anyUp)
	if fatal {
		r.c.unrecoverable.Inc()
		r.record(telemetry.Event{
			Kind:   telemetry.KindStorageUnrecoverable,
			Detail: fmt.Sprintf("read of %q: no trustworthy copy on %d replicas", key, len(r.media)),
		})
		return nil, false, fmt.Errorf("%w: key %q has no trustworthy copy on any of %d replicas", ErrUnrecoverable, key, len(r.media))
	}
	if best < 0 {
		return nil, false, nil
	}
	if n := r.repairFrom(key, cands, best, nil); n > 0 {
		r.c.readRepairs.Add(int64(n))
		r.record(telemetry.Event{
			Kind:   telemetry.KindStorageRepair,
			Detail: fmt.Sprintf("read repair of %q", key),
			Attrs:  map[string]int64{"repaired": int64(n)},
		})
	}
	win := cands[best].rec
	if win.tombstone {
		return nil, false, nil
	}
	out := make([]byte, len(win.payload))
	copy(out, win.payload)
	return out, true, nil
}

// Commit applies a staged batch as version v to every replica: the batch's
// records in sorted key order, then the commit record. Only a medium that
// was caught up (its commit record pinning v-1) may be stamped with the new
// commit record: a medium that missed an earlier batch receives this batch's
// data records but keeps its old commit record — stamping it would declare
// its stale copies of keys outside the batch authoritative — and stays
// behind until a scrub pass fully repairs it. A replica whose medium tears
// mid-batch is likewise left behind (and repaired later). When no caught-up
// replica fully absorbs the commit, Commit tries to salvage it by promoting
// a replica that did absorb the whole batch: every record outside the batch
// is verified against — and repaired from — the still-readable pre-commit
// authoritative copies, and only on full success is that replica stamped. If
// neither a caught-up replica nor a promotion lands the commit, the new
// version cannot be trusted on any medium and Commit returns
// ErrUnrecoverable without advancing the version.
func (r *ReplicatedStore) Commit(v uint64, batch map[string]stagedVal) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	keys := r.keyScratch[:0]
	for k := range batch {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	r.keyScratch = keys
	if r.union != nil {
		for _, k := range keys {
			if _, ok := r.unionSet[k]; !ok {
				// The batch introduces a key the cached union has never
				// seen; whether its writes land (or tear) is per medium, so
				// the cache is rebuilt from the media on next use.
				r.union, r.unionSet = nil, nil
				break
			}
		}
	}

	up, anyUp := r.caughtUp()
	okReplicas := 0
	absorbed := make([]bool, len(r.media))
	for i, m := range r.media {
		good := true
		for _, k := range keys {
			sv := batch[k]
			rec := record{version: v, tombstone: sv.deleted, payload: sv.val}
			if err := m.Write(k, encodeRecord(rec)); err != nil {
				r.c.tornReplicaCommits.Inc()
				good = false
				break
			}
		}
		absorbed[i] = good
		if !up[i] {
			continue
		}
		if good {
			if err := m.Write(commitRecordKey, encodeCommitRecord(v)); err != nil {
				r.c.tornReplicaCommits.Inc()
				good = false
			}
		}
		if good {
			okReplicas++
		}
	}
	r.c.commits.Inc()
	if okReplicas == 0 {
		for i := range r.media {
			if absorbed[i] && r.rescueCommit(i, batch, up, anyUp) {
				if r.media[i].Write(commitRecordKey, encodeCommitRecord(v)) == nil {
					r.c.commitRescues.Inc()
					r.record(telemetry.Event{
						Kind:   telemetry.KindStorageRescue,
						Detail: fmt.Sprintf("commit %d salvaged by promoting replica %d", v, i),
						Attrs:  map[string]int64{"version": int64(v), "replica": int64(i)},
					})
					okReplicas = 1
					break
				}
			}
		}
	}
	if okReplicas == 0 {
		r.c.unrecoverable.Inc()
		r.record(telemetry.Event{
			Kind:   telemetry.KindStorageUnrecoverable,
			Detail: fmt.Sprintf("commit %d absorbed by no caught-up replica", v),
			Attrs:  map[string]int64{"version": int64(v)},
		})
		return fmt.Errorf("%w: commit %d absorbed by no caught-up replica (of %d)", ErrUnrecoverable, v, len(r.media))
	}
	r.version = v
	if r.oracle != nil {
		for _, k := range keys {
			if sv := batch[k]; sv.deleted {
				delete(r.oracle, k)
			} else {
				cp := make([]byte, len(sv.val))
				copy(cp, sv.val)
				r.oracle[k] = cp
			}
		}
	}
	return nil
}

// rescueCommit verifies and repairs every record of medium i outside the
// batch just written, against the replicas that were authoritative before
// this commit (a torn medium rejects writes but still reads). It reports
// whether medium i is provably fully current — only then may the caller
// stamp it with the new commit record. Batch keys are exempt: the caller
// proved them by completing their writes, and their new records are a
// version ahead of r.version, which readCandidates would misread as corrupt.
func (r *ReplicatedStore) rescueCommit(i int, batch map[string]stagedVal, up []bool, anyUp bool) bool {
	for _, key := range r.unionKeys() {
		if _, inBatch := batch[key]; inBatch {
			continue
		}
		cands, best, fatal := r.bestOf(key, up, anyUp)
		if fatal {
			return false
		}
		if best < 0 || best == i {
			continue
		}
		if c := cands[i]; c.valid && c.rec.version == cands[best].rec.version {
			continue
		}
		if r.media[i].Write(key, encodeRecord(cands[best].rec)) != nil {
			return false
		}
		r.c.scrubRepairs.Inc()
	}
	return true
}

// unionKeys returns every logical key stored on any medium, sorted. The
// result is cached: the scrub pass calls this every frame, and in steady
// state (no new keys committed) rebuilding and re-sorting the unchanged set
// dominated campaign profiles. Callers must not mutate the returned slice.
func (r *ReplicatedStore) unionKeys() []string {
	if r.union != nil {
		return r.union
	}
	seen := make(map[string]struct{})
	for _, m := range r.media {
		for _, k := range m.Keys() {
			if k != commitRecordKey {
				seen[k] = struct{}{}
			}
		}
	}
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(keys) > 0 {
		r.union, r.unionSet = keys, seen
	}
	return keys
}

// Scrub is the end-of-frame integrity pass: it re-verifies every record on
// every replica, repairs divergent or corrupt copies from the newest valid
// one, refreshes stale commit records, and advances each medium's fault
// clock. skip (optional) exempts keys with a staged deletion this frame —
// repairing a record that the next commit tombstones is wasted work. A key
// corrupt on every replica makes Scrub return ErrUnrecoverable after
// finishing the pass.
//
// A stale commit record is refreshed only for a medium whose every record
// this pass brought (or verified) current: a medium with a failed repair —
// or a divergent copy of a skipped or unrecoverable key — must stay
// non-authoritative, or its unrepaired records would masquerade as the
// newest committed writes once the commit record declares it caught up.
func (r *ReplicatedStore) Scrub(skip func(key string) bool) (ScrubReport, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var rep ScrubReport
	up, anyUp := r.caughtUp()
	allUp := true
	for _, u := range up {
		allUp = allUp && u
	}
	unrepaired := make([]bool, len(r.media))
	for _, key := range r.unionKeys() {
		doomed := skip != nil && skip(key)
		if doomed && allUp {
			continue
		}
		cands, best, fatal := r.bestOf(key, up, anyUp)
		if doomed {
			// The next commit tombstones the key everywhere, so it is not
			// worth repairing — but a stale medium holding a divergent copy
			// of it has not been brought current either.
			for i, c := range cands {
				if up[i] || !c.present {
					continue
				}
				if best >= 0 && c.valid && c.rec.version == cands[best].rec.version {
					continue
				}
				unrepaired[i] = true
			}
			continue
		}
		rep.Checked++
		for _, c := range cands {
			if c.present && !c.valid {
				rep.Corrupt++
			}
		}
		if fatal {
			rep.Unrecoverable = append(rep.Unrecoverable, key)
			for i, c := range cands {
				if !up[i] && c.present {
					unrepaired[i] = true
				}
			}
			continue
		}
		if best < 0 {
			continue
		}
		for _, c := range cands {
			if c.valid && c.rec.version < cands[best].rec.version {
				rep.Corrupt++ // stale, not damaged, but still divergent
			}
		}
		n := r.repairFrom(key, cands, best, unrepaired)
		rep.Repaired += n
		r.c.scrubRepairs.Add(int64(n))
	}
	for i, m := range r.media {
		raw, ok := m.Read(commitRecordKey)
		v, err := uint64(0), error(nil)
		if ok {
			v, err = decodeCommitRecord(raw)
		}
		if ok && err == nil && v == r.version {
			continue
		}
		if unrepaired[i] {
			continue
		}
		if m.Write(commitRecordKey, encodeCommitRecord(r.version)) == nil {
			rep.StaleCommits++
			r.c.staleCommitRecords.Inc()
		}
	}
	for _, m := range r.media {
		m.EndFrame()
	}
	r.c.scrubRuns.Inc()
	if rep.Corrupt > 0 || rep.Repaired > 0 || rep.StaleCommits > 0 {
		r.record(telemetry.Event{
			Kind:   telemetry.KindStorageScrub,
			Detail: "scrub pass found work",
			Attrs: map[string]int64{
				"checked":       int64(rep.Checked),
				"corrupt":       int64(rep.Corrupt),
				"repaired":      int64(rep.Repaired),
				"stale_commits": int64(rep.StaleCommits),
			},
		})
	}
	if len(rep.Unrecoverable) > 0 {
		r.c.unrecoverable.Add(int64(len(rep.Unrecoverable)))
		r.record(telemetry.Event{
			Kind:   telemetry.KindStorageUnrecoverable,
			Detail: fmt.Sprintf("scrub found %d keys corrupt on all replicas", len(rep.Unrecoverable)),
			Attrs:  map[string]int64{"keys": int64(len(rep.Unrecoverable))},
		})
		return rep, fmt.Errorf("%w: scrub found %d keys corrupt on all replicas: %v",
			ErrUnrecoverable, len(rep.Unrecoverable), rep.Unrecoverable)
	}
	return rep, nil
}

// Snapshot merges every replica into the committed view: for each key the
// newest valid record wins. It returns ErrUnrecoverable if any key is
// corrupt on all replicas; the snapshot is then partial.
func (r *ReplicatedStore) Snapshot() (map[string][]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string][]byte)
	var lost []string
	up, anyUp := r.caughtUp()
	for _, key := range r.unionKeys() {
		cands, best, fatal := r.bestOf(key, up, anyUp)
		if fatal {
			lost = append(lost, key)
			continue
		}
		if best < 0 {
			continue
		}
		if win := cands[best].rec; !win.tombstone {
			cp := make([]byte, len(win.payload))
			copy(cp, win.payload)
			out[key] = cp
		}
	}
	if len(lost) > 0 {
		r.c.unrecoverable.Add(int64(len(lost)))
		return out, fmt.Errorf("%w: %d keys corrupt on all replicas in snapshot: %v",
			ErrUnrecoverable, len(lost), lost)
	}
	return out, nil
}

// SnapshotPrefix is Snapshot restricted to keys carrying the given prefix:
// only matching keys are read, verified and copied, so snapshotting one
// region does not pay for the rest of the store.
func (r *ReplicatedStore) SnapshotPrefix(prefix string) (map[string][]byte, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string][]byte)
	var lost []string
	up, anyUp := r.caughtUp()
	for _, key := range r.unionKeys() {
		if len(key) < len(prefix) || key[:len(prefix)] != prefix {
			continue
		}
		cands, best, fatal := r.bestOf(key, up, anyUp)
		if fatal {
			lost = append(lost, key)
			continue
		}
		if best < 0 {
			continue
		}
		if win := cands[best].rec; !win.tombstone {
			cp := make([]byte, len(win.payload))
			copy(cp, win.payload)
			out[key] = cp
		}
	}
	if len(lost) > 0 {
		r.c.unrecoverable.Add(int64(len(lost)))
		return out, fmt.Errorf("%w: %d keys corrupt on all replicas in snapshot: %v",
			ErrUnrecoverable, len(lost), lost)
	}
	return out, nil
}

// LostKeys returns the keys under prefix that are corrupt on every replica —
// the structured companion to SnapshotPrefix's ErrUnrecoverable, for callers
// that converge past damage instead of halting: they need to know exactly
// which records are gone to quarantine only the state those records carried.
func (r *ReplicatedStore) LostKeys(prefix string) []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	var lost []string
	up, anyUp := r.caughtUp()
	for _, key := range r.unionKeys() {
		if len(key) < len(prefix) || key[:len(prefix)] != prefix {
			continue
		}
		if _, _, fatal := r.bestOf(key, up, anyUp); fatal {
			lost = append(lost, key)
		}
	}
	return lost
}

// KeysWithPrefix returns the committed keys having the given prefix, sorted.
// Keys corrupt on every replica make it return ErrUnrecoverable.
func (r *ReplicatedStore) KeysWithPrefix(prefix string) ([]string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	var keys []string
	var lost []string
	up, anyUp := r.caughtUp()
	for _, key := range r.unionKeys() {
		if len(key) < len(prefix) || key[:len(prefix)] != prefix {
			continue
		}
		cands, best, fatal := r.bestOf(key, up, anyUp)
		if fatal {
			lost = append(lost, key)
			continue
		}
		if best >= 0 && !cands[best].rec.tombstone {
			keys = append(keys, key)
		}
	}
	if len(lost) > 0 {
		r.c.unrecoverable.Add(int64(len(lost)))
		return keys, fmt.Errorf("%w: %d keys corrupt on all replicas: %v", ErrUnrecoverable, len(lost), lost)
	}
	return keys, nil
}
