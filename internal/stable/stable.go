// Package stable implements the stable storage of a fail-stop processor.
//
// In the fail-stop model of Schlichting and Schneider, a processor that
// fails halts at the end of the last instruction it completed; the contents
// of volatile storage are lost but the contents of stable storage are
// preserved and can be polled by the surviving processors. The
// reconfiguration architecture of Strunk, Knight and Aiello additionally
// requires frame-atomic commits: each application commits its results to
// stable storage at the end of each real-time frame (section 6.1), and
// reads performed at the start of a frame observe only values committed in
// earlier frames.
//
// A Store therefore exposes a read-committed, staged-write interface: Put
// and Delete stage changes that become visible only after Commit, which the
// frame scheduler invokes at the end of each frame. A processor failure
// discards the staged writes (they were volatile) but never the committed
// state.
package stable

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Store is a frame-atomic, crash-survivable key-value store. The zero value
// is not usable; call NewStore.
//
// A Store is safe for concurrent use: within a frame, multiple applications
// hosted on the same processor may stage writes and read the committed view
// concurrently.
type Store struct {
	mu        sync.Mutex
	committed map[string][]byte
	staged    map[string]stagedVal
	version   uint64
}

// stagedVal is a staged write: a pending value or a tombstone.
type stagedVal struct {
	val     []byte
	deleted bool
}

// NewStore returns an empty store at version 0.
func NewStore() *Store {
	return &Store{
		committed: make(map[string][]byte),
		staged:    make(map[string]stagedVal),
	}
}

// Get returns the committed value for key. Staged (uncommitted) writes are
// never visible, matching the read-committed semantics of frame-boundary
// stable-storage access. The returned slice is a copy.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.committed[key]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// Put stages a write of val to key. The write becomes visible after the next
// Commit. The input slice is copied.
func (s *Store) Put(key string, val []byte) {
	cp := make([]byte, len(val))
	copy(cp, val)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.staged[key] = stagedVal{val: cp}
}

// Delete stages removal of key, effective at the next Commit.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.staged[key] = stagedVal{deleted: true}
}

// Commit atomically applies all staged writes and returns the new version.
// Commit with nothing staged still advances the version: every frame ends
// with a commit, and the version doubles as a frame-aligned logical clock.
func (s *Store) Commit() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k, sv := range s.staged {
		if sv.deleted {
			delete(s.committed, k)
		} else {
			s.committed[k] = sv.val
		}
	}
	clear(s.staged)
	s.version++
	return s.version
}

// Discard drops all staged writes without committing them. The frame
// runtime calls Discard when the hosting processor fails mid-frame: the
// staged writes were volatile and are lost, while committed state survives.
func (s *Store) Discard() {
	s.mu.Lock()
	defer s.mu.Unlock()
	clear(s.staged)
}

// Version returns the number of commits performed.
func (s *Store) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// PendingWrites returns the number of staged, uncommitted writes.
func (s *Store) PendingWrites() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.staged)
}

// Snapshot returns a deep copy of the committed state. Surviving processors
// use Snapshot to poll the stable storage of a failed processor (section 5.1
// of the paper) and to migrate application state between processors during
// reconfiguration.
func (s *Store) Snapshot() map[string][]byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string][]byte, len(s.committed))
	for k, v := range s.committed {
		cp := make([]byte, len(v))
		copy(cp, v)
		out[k] = cp
	}
	return out
}

// Restore stages every entry of snap (it still requires a Commit to become
// visible, preserving frame atomicity during migration).
func (s *Store) Restore(snap map[string][]byte) {
	for k, v := range snap {
		s.Put(k, v)
	}
}

// Keys returns the committed keys having the given prefix, sorted.
func (s *Store) Keys(prefix string) []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var keys []string
	for k := range s.committed {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	return keys
}

// PutString stages a string value.
func (s *Store) PutString(key, val string) { s.Put(key, []byte(val)) }

// GetString returns the committed value for key as a string.
func (s *Store) GetString(key string) (string, bool) {
	v, ok := s.Get(key)
	if !ok {
		return "", false
	}
	return string(v), true
}

// PutInt64 stages an integer value in decimal form.
func (s *Store) PutInt64(key string, val int64) {
	s.Put(key, strconv.AppendInt(nil, val, 10))
}

// GetInt64 returns the committed value for key parsed as a decimal integer.
// It returns an error if the key is absent or malformed.
func (s *Store) GetInt64(key string) (int64, error) {
	v, ok := s.Get(key)
	if !ok {
		return 0, fmt.Errorf("stable: key %q not present", key)
	}
	n, err := strconv.ParseInt(string(v), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("stable: key %q: %w", key, err)
	}
	return n, nil
}

// PutJSON stages the JSON encoding of val.
func (s *Store) PutJSON(key string, val any) error {
	data, err := json.Marshal(val)
	if err != nil {
		return fmt.Errorf("stable: encoding %q: %w", key, err)
	}
	s.Put(key, data)
	return nil
}

// GetJSON decodes the committed value for key into out. It returns false
// with a nil error if the key is absent.
func (s *Store) GetJSON(key string, out any) (bool, error) {
	v, ok := s.Get(key)
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(v, out); err != nil {
		return false, fmt.Errorf("stable: decoding %q: %w", key, err)
	}
	return true, nil
}

// Region returns a view of the store in which every key is transparently
// prefixed. Regions give each application a private namespace within its
// processor's stable storage while sharing the same frame-atomic commit.
func (s *Store) Region(prefix string) *Region {
	return &Region{store: s, prefix: prefix + "/"}
}

// Region is a prefixed view of a Store. All operations address keys within
// the region's namespace; Commit and Discard remain whole-store operations
// performed by the frame runtime, not by region holders.
type Region struct {
	store  *Store
	prefix string
}

// Get returns the committed value for key within the region.
func (r *Region) Get(key string) ([]byte, bool) { return r.store.Get(r.prefix + key) }

// Put stages a write within the region.
func (r *Region) Put(key string, val []byte) { r.store.Put(r.prefix+key, val) }

// Delete stages a removal within the region.
func (r *Region) Delete(key string) { r.store.Delete(r.prefix + key) }

// PutString stages a string value within the region.
func (r *Region) PutString(key, val string) { r.store.PutString(r.prefix+key, val) }

// GetString returns the committed string value for key within the region.
func (r *Region) GetString(key string) (string, bool) { return r.store.GetString(r.prefix + key) }

// PutInt64 stages an integer value within the region.
func (r *Region) PutInt64(key string, val int64) { r.store.PutInt64(r.prefix+key, val) }

// GetInt64 returns the committed integer value for key within the region.
func (r *Region) GetInt64(key string) (int64, error) { return r.store.GetInt64(r.prefix + key) }

// PutJSON stages the JSON encoding of val within the region.
func (r *Region) PutJSON(key string, val any) error { return r.store.PutJSON(r.prefix+key, val) }

// GetJSON decodes the committed value for key within the region into out.
func (r *Region) GetJSON(key string, out any) (bool, error) {
	return r.store.GetJSON(r.prefix+key, out)
}

// Snapshot returns a deep copy of the committed entries in the region, with
// the region prefix stripped.
func (r *Region) Snapshot() map[string][]byte {
	full := r.store.Snapshot()
	out := make(map[string][]byte)
	for k, v := range full {
		if strings.HasPrefix(k, r.prefix) {
			out[strings.TrimPrefix(k, r.prefix)] = v
		}
	}
	return out
}

// Restore stages every entry of snap into the region.
func (r *Region) Restore(snap map[string][]byte) {
	for k, v := range snap {
		r.Put(k, v)
	}
}

// Keys returns the committed keys in the region (prefix stripped), sorted.
func (r *Region) Keys() []string {
	keys := r.store.Keys(r.prefix)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = strings.TrimPrefix(k, r.prefix)
	}
	return out
}
