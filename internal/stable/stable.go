// Package stable implements the stable storage of a fail-stop processor.
//
// In the fail-stop model of Schlichting and Schneider, a processor that
// fails halts at the end of the last instruction it completed; the contents
// of volatile storage are lost but the contents of stable storage are
// preserved and can be polled by the surviving processors. The
// reconfiguration architecture of Strunk, Knight and Aiello additionally
// requires frame-atomic commits: each application commits its results to
// stable storage at the end of each real-time frame (section 6.1), and
// reads performed at the start of a frame observe only values committed in
// earlier frames.
//
// A Store therefore exposes a read-committed, staged-write interface: Put
// and Delete stage changes that become visible only after Commit, which the
// frame scheduler invokes at the end of each frame. A processor failure
// discards the staged writes (they were volatile) but never the committed
// state.
//
// The paper assumes stable storage is ultra-dependable; Schlichting and
// Schneider's original fail-stop construction instead derives it from
// unreliable parts. This package provides both: NewStore returns the
// assumed-perfect in-memory store, while NewHardened mounts the same
// staged-commit interface on a ReplicatedStore — N checksummed replicas
// with read repair and an end-of-frame scrub pass over injectable Media —
// so that sub-fail-stop storage faults (torn writes, bit rot, stuck reads)
// are either repaired transparently or converted into a fail-stop halt via
// the store's fault sink, never into silently wrong data.
package stable

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Store is a frame-atomic, crash-survivable key-value store. The zero value
// is not usable; call NewStore.
//
// A Store is safe for concurrent use: within a frame, multiple applications
// hosted on the same processor may stage writes and read the committed view
// concurrently.
type Store struct {
	mu sync.Mutex
	// commitMu serializes Commit end to end: on the hardened path the
	// backend commit happens outside mu (the fault sink may re-enter the
	// store), so without it two concurrent Commits would derive the same
	// next version and race duplicate version numbers into the backend.
	commitMu  sync.Mutex
	committed map[string][]byte // plain in-memory backend; nil when hardened
	// buckets indexes committed keys by their top-level path segment
	// ("app/", "telemetry/", ...), so prefix scans — notably region
	// snapshots during application migration — touch only the keys of one
	// subsystem instead of everything resident on the store. Nil when
	// hardened.
	buckets map[string]map[string]bool
	rep     *ReplicatedStore // hardened backend; nil when plain
	staged  map[string]stagedVal
	// spare is the previous frame's staged map, cleared and parked after a
	// hardened commit so the next frame swaps it back in instead of
	// allocating a fresh map every frame.
	spare   map[string]stagedVal
	version uint64
	onFault func(error) // invoked (outside the lock) on unrecoverable faults
	// pools holds store-owned value buffers retired by commits, staged
	// overwrites and discards, bucketed by power-of-two size class so Put
	// finds a fitting buffer in O(1). Keys rewritten every frame — notably
	// the flight recorder's journal chunks and the kernel's protocol state
	// — cycle through the pool instead of allocating a fresh copy per
	// write. Each class is bounded by stagePoolClassMax.
	pools [poolClasses][][]byte
}

// Pool size classes: 64 B (class 0) through 64 KiB, doubling per class. A
// buffer is filed under the class of its capacity rounded down, so every
// buffer in class c has cap >= 64<<c; a request of n bytes pops from the
// class where that floor guarantees a fit. Values past the top class
// allocate exactly — doubling them would waste real memory.
const (
	poolClassMinBits = 6 // 64 B
	poolClasses      = 11
)

// stagePoolClassMax bounds each size class of the retired-buffer pool
// separately. A single global bound lets the most numerous keys crowd out
// the rest: a store's dozens of tiny per-frame counters would fill it with
// 64-byte buffers and force the journal-chunk classes to allocate fresh on
// every write. Per-frame rewrites of any one size are few, so a small
// per-class bound captures each cycle; the worst-case pool footprint
// (every class full) is ~1 MB and reached only by a store that actually
// uses every size class.
const stagePoolClassMax = 8

// roundCap rounds a requested buffer size up to its size class, so a miss
// allocates a buffer that later retires into exactly the class serving
// requests of this size — a journal chunk that grew by one event still
// reuses its predecessor's buffer.
func roundCap(n int) int {
	const maxRound = 64 << (poolClasses - 1)
	if n >= maxRound {
		return n
	}
	c := 1 << poolClassMinBits
	for c < n {
		c <<= 1
	}
	return c
}

// classUp returns the smallest class whose every buffer fits n bytes, or -1
// when n exceeds the top class.
func classUp(n int) int {
	for c := 0; c < poolClasses; c++ {
		if 64<<c >= n {
			return c
		}
	}
	return -1
}

// classDown returns the class a buffer of the given capacity files under:
// the class of its capacity rounded down, clamped to the top class (a
// larger buffer still satisfies every top-class request). -1 for buffers
// too small to pool.
func classDown(capacity int) int {
	c := -1
	for capacity >= 64 && c < poolClasses-1 {
		capacity >>= 1
		c++
	}
	return c
}

// takeBuf returns a retired buffer with capacity >= n (length 0), or nil
// when none fits. It pops from the request's own size class, then one class
// up — never further, so a small counter write cannot strand a
// journal-chunk buffer on a tiny committed key. Caller holds mu.
func (s *Store) takeBuf(n int) []byte {
	cls := classUp(n)
	if cls < 0 {
		return nil
	}
	for c := cls; c < poolClasses && c <= cls+1; c++ {
		if l := len(s.pools[c]); l > 0 {
			b := s.pools[c][l-1]
			s.pools[c][l-1] = nil
			s.pools[c] = s.pools[c][:l-1]
			return b[:0]
		}
	}
	return nil
}

// recycle parks a store-owned buffer for reuse by a later Put. Only buffers
// the store allocated and exclusively owns may be recycled: staged values
// displaced before commit, committed values displaced by an overwrite or
// deletion, and hardened-commit batches the backend has already copied.
// Caller holds mu.
func (s *Store) recycle(b []byte) {
	cls := classDown(cap(b))
	if cls < 0 || len(s.pools[cls]) >= stagePoolClassMax {
		return
	}
	//lint:allow allocfree bounded: a class grows to stagePoolClassMax entries once, after which its length only cycles within the retained backing array
	s.pools[cls] = append(s.pools[cls], b)
}

// stageLocked installs a staged operation, retiring the buffer of any write
// it displaces within the frame. Caller holds mu.
func (s *Store) stageLocked(key string, sv stagedVal) {
	if old, ok := s.staged[key]; ok {
		s.recycle(old.val)
	}
	s.staged[key] = sv
}

// bucketOf returns the bucket-index key for a store key: the path up to and
// including the first '/', or "" for keys without one.
func bucketOf(key string) string {
	if i := strings.IndexByte(key, '/'); i >= 0 {
		return key[:i+1]
	}
	return ""
}

// stagedVal is a staged write: a pending value or a tombstone.
type stagedVal struct {
	val     []byte
	deleted bool
}

// NewStore returns an empty store at version 0 over the assumed-perfect
// in-memory backend.
func NewStore() *Store {
	return &Store{
		committed: make(map[string][]byte),
		buckets:   make(map[string]map[string]bool),
		staged:    make(map[string]stagedVal),
	}
}

// NewHardened returns a store whose committed state lives on the given
// replicated, checksummed backend instead of a perfect in-memory map. Use
// SetFaultSink to receive unrecoverable-fault notifications; without a sink,
// unrecoverable corruption silently reads as absence, which weakens the
// fail-stop guarantee.
//
// The store adopts the backend's committed version, so a backend remounted
// from durable media (MountReplicatedStore) continues its version sequence
// instead of re-issuing version 1 against history the media already hold.
// Fresh backends report version 0, preserving the original behavior.
func NewHardened(rep *ReplicatedStore) *Store {
	return &Store{
		rep:     rep,
		version: rep.Version(),
		staged:  make(map[string]stagedVal),
	}
}

// Hardened returns the replicated backend, or nil for a plain store. It is
// how campaign instrumentation reaches the fault-handling counters.
func (s *Store) Hardened() *ReplicatedStore {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rep
}

// SetFaultSink installs the unrecoverable-fault handler. The sink is called
// outside the store's lock, so it may call back into the store (the
// fail-stop processor's halt path does: halting discards staged writes).
// It must not call Commit: a sink fired by a failed commit runs while the
// commit-serializing lock is held.
func (s *Store) SetFaultSink(fn func(error)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onFault = fn
}

// fault dispatches an unrecoverable fault to the sink. Call without holding
// the lock.
func (s *Store) fault(sink func(error), err error) {
	if err != nil && sink != nil {
		sink(err)
	}
}

// Get returns the committed value for key. Staged (uncommitted) writes are
// never visible, matching the read-committed semantics of frame-boundary
// stable-storage access. The returned slice is a copy. On a hardened store,
// corruption that defeats all replicas reports through the fault sink and
// reads as absent — never as wrong data.
func (s *Store) Get(key string) ([]byte, bool) {
	s.mu.Lock()
	if s.rep != nil {
		sink := s.onFault
		s.mu.Unlock()
		v, ok, err := s.rep.Get(key)
		if err != nil {
			s.fault(sink, err)
			return nil, false
		}
		return v, ok
	}
	defer s.mu.Unlock()
	v, ok := s.committed[key]
	if !ok {
		return nil, false
	}
	out := make([]byte, len(v))
	copy(out, v)
	return out, true
}

// Put stages a write of val to key. The write becomes visible after the next
// Commit. The input slice is copied — into a pooled buffer retired by an
// earlier commit when one fits, so steady per-frame rewrites recycle their
// storage instead of allocating.
func (s *Store) Put(key string, val []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	cp := s.takeBuf(len(val))
	if cp == nil {
		cp = make([]byte, len(val), roundCap(len(val)))
		copy(cp, val)
	} else {
		//lint:allow allocfree pooled reuse: takeBuf returned cap >= len(val), so this append fills the retired buffer and never grows
		cp = append(cp, val...)
	}
	s.stageLocked(key, stagedVal{val: cp})
}

// putOwned stages a write taking ownership of val: the caller must not
// retain or mutate the slice afterwards. The typed helpers (PutInt64,
// PutJSON) stage freshly built buffers through it so each write costs one
// allocation, not two.
func (s *Store) putOwned(key string, val []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stageLocked(key, stagedVal{val: val})
}

// GetInto appends the committed value for key to buf[:0] and returns the
// extended slice, avoiding Get's per-read allocation when the caller holds a
// reusable buffer. On a miss the returned slice is buf[:0].
func (s *Store) GetInto(buf []byte, key string) ([]byte, bool) {
	buf = buf[:0]
	s.mu.Lock()
	if s.rep == nil {
		v, ok := s.committed[key]
		if ok {
			buf = append(buf, v...)
		}
		s.mu.Unlock()
		return buf, ok
	}
	s.mu.Unlock()
	v, ok := s.Get(key)
	if !ok {
		return buf, false
	}
	return append(buf, v...), true
}

// Delete stages removal of key, effective at the next Commit.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.stageLocked(key, stagedVal{deleted: true})
}

// Commit atomically applies all staged writes and returns the new version.
// Commit with nothing staged still advances the version: every frame ends
// with a commit, and the version doubles as a frame-aligned logical clock.
// On a hardened store a commit absorbed by no caught-up replica reports
// through the fault sink and does not advance the version — the owning
// processor is expected to halt.
func (s *Store) Commit() uint64 {
	s.commitMu.Lock()
	defer s.commitMu.Unlock()
	s.mu.Lock()
	if s.rep != nil {
		next := s.version + 1
		batch := s.staged
		if s.spare != nil {
			s.staged, s.spare = s.spare, nil
		} else {
			s.staged = make(map[string]stagedVal)
		}
		sink := s.onFault
		s.mu.Unlock()
		err := s.rep.Commit(next, batch)
		// The backend copied everything it keeps: retire the batch's
		// buffers for reuse and park the cleared map for the next frame's
		// staging (also on failure — the batch is dropped either way).
		s.mu.Lock()
		for _, sv := range batch {
			s.recycle(sv.val)
		}
		s.mu.Unlock()
		clear(batch)
		if err != nil {
			s.fault(sink, err)
			s.mu.Lock()
			if s.spare == nil {
				s.spare = batch
			}
			s.mu.Unlock()
			return s.Version()
		}
		s.mu.Lock()
		s.version = next
		if s.spare == nil {
			s.spare = batch
		}
		s.mu.Unlock()
		return next
	}
	defer s.mu.Unlock()
	for k, sv := range s.staged {
		if sv.deleted {
			if old, ok := s.committed[k]; ok {
				s.recycle(old)
				delete(s.committed, k)
				bk := bucketOf(k)
				if b := s.buckets[bk]; b != nil {
					delete(b, k)
					if len(b) == 0 {
						delete(s.buckets, bk)
					}
				}
			}
		} else {
			if old, ok := s.committed[k]; ok {
				// The staged write displaces the committed buffer; retire
				// it so next frame's rewrite of the same key reuses it.
				s.recycle(old)
			} else {
				bk := bucketOf(k)
				b := s.buckets[bk]
				if b == nil {
					b = make(map[string]bool)
					s.buckets[bk] = b
				}
				b[k] = true
			}
			s.committed[k] = sv.val
		}
	}
	clear(s.staged)
	s.version++
	return s.version
}

// Scrub runs the hardened backend's end-of-frame integrity pass, skipping
// keys with a staged deletion (per Dirty, repairing a record the next commit
// tombstones is wasted work). It is a no-op on a plain store. Unrecoverable
// corruption reports through the fault sink and is also returned.
func (s *Store) Scrub() (ScrubReport, error) {
	s.mu.Lock()
	if s.rep == nil {
		s.mu.Unlock()
		return ScrubReport{}, nil
	}
	doomed := make(map[string]bool)
	for k, sv := range s.staged {
		if sv.deleted {
			doomed[k] = true
		}
	}
	sink := s.onFault
	s.mu.Unlock()
	rep, err := s.rep.Scrub(func(key string) bool { return doomed[key] })
	if err != nil {
		s.fault(sink, err)
	}
	return rep, err
}

// Discard drops all staged writes without committing them. The frame
// runtime calls Discard when the hosting processor fails mid-frame: the
// staged writes were volatile and are lost, while committed state survives.
func (s *Store) Discard() {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sv := range s.staged {
		s.recycle(sv.val)
	}
	clear(s.staged)
}

// Version returns the number of commits performed.
func (s *Store) Version() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.version
}

// PendingWrites returns the number of staged, uncommitted writes.
func (s *Store) PendingWrites() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.staged)
}

// Snapshot returns a deep copy of the committed state. Surviving processors
// use Snapshot to poll the stable storage of a failed processor (section 5.1
// of the paper) and to migrate application state between processors during
// reconfiguration.
func (s *Store) Snapshot() map[string][]byte {
	s.mu.Lock()
	if s.rep != nil {
		sink := s.onFault
		s.mu.Unlock()
		snap, err := s.rep.Snapshot()
		s.fault(sink, err)
		return snap
	}
	defer s.mu.Unlock()
	out := make(map[string][]byte, len(s.committed))
	for k, v := range s.committed {
		cp := make([]byte, len(v))
		copy(cp, v)
		out[k] = cp
	}
	return out
}

// SnapshotPrefix returns a deep copy of the committed entries whose keys
// carry the given prefix. Migration of a single region uses it so the cost
// scales with the region, not with everything else resident on the store
// (notably the flight-recorder journal on the SCRAM host).
func (s *Store) SnapshotPrefix(prefix string) map[string][]byte {
	s.mu.Lock()
	if s.rep != nil {
		sink := s.onFault
		s.mu.Unlock()
		snap, err := s.rep.SnapshotPrefix(prefix)
		s.fault(sink, err)
		return snap
	}
	defer s.mu.Unlock()
	var out map[string][]byte
	copyKey := func(k string) {
		if !strings.HasPrefix(k, prefix) {
			return
		}
		v := s.committed[k]
		cp := make([]byte, len(v))
		copy(cp, v)
		out[k] = cp
	}
	if i := strings.IndexByte(prefix, '/'); i >= 0 {
		// The prefix pins a top-level segment: only that bucket can match.
		bucket := s.buckets[prefix[:i+1]]
		out = make(map[string][]byte, len(bucket))
		for k := range bucket {
			copyKey(k)
		}
		return out
	}
	out = make(map[string][]byte, len(s.committed))
	for k := range s.committed {
		copyKey(k)
	}
	return out
}

// Restore stages every entry of snap (it still requires a Commit to become
// visible, preserving frame atomicity during migration).
func (s *Store) Restore(snap map[string][]byte) {
	for k, v := range snap {
		s.Put(k, v)
	}
}

// Keys returns the committed keys having the given prefix, sorted.
func (s *Store) Keys(prefix string) []string {
	s.mu.Lock()
	if s.rep != nil {
		sink := s.onFault
		s.mu.Unlock()
		keys, err := s.rep.KeysWithPrefix(prefix)
		s.fault(sink, err)
		return keys
	}
	defer s.mu.Unlock()
	var keys []string
	if i := strings.IndexByte(prefix, '/'); i >= 0 {
		bucket := s.buckets[prefix[:i+1]]
		keys = make([]string, 0, len(bucket))
		for k := range bucket {
			if strings.HasPrefix(k, prefix) {
				keys = append(keys, k)
			}
		}
	} else {
		keys = make([]string, 0, len(s.committed))
		for k := range s.committed {
			if strings.HasPrefix(k, prefix) {
				keys = append(keys, k)
			}
		}
	}
	sort.Strings(keys)
	return keys
}

// StagedLen returns the number of staged, uncommitted operations, counting
// deletions as well as writes — the committed view cannot distinguish "key
// absent" from "key deleted this frame", but diagnostics (commit-hook
// logging, the scrub pass) can via StagedLen and Dirty.
func (s *Store) StagedLen() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.staged)
}

// Dirty reports whether key has a staged, uncommitted operation this frame
// and whether that operation is a deletion.
func (s *Store) Dirty(key string) (staged, deleted bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sv, ok := s.staged[key]
	return ok, ok && sv.deleted
}

// PutString stages a string value.
func (s *Store) PutString(key, val string) { s.Put(key, []byte(val)) }

// GetString returns the committed value for key as a string.
func (s *Store) GetString(key string) (string, bool) {
	v, ok := s.Get(key)
	if !ok {
		return "", false
	}
	return string(v), true
}

// PutInt64 stages an integer value in decimal form.
func (s *Store) PutInt64(key string, val int64) {
	s.putOwned(key, strconv.AppendInt(nil, val, 10))
}

// parseDecimal parses a decimal int64 from raw bytes without converting to a
// string, so the per-frame counter reads on the kernel path stay
// allocation-free.
func parseDecimal(v []byte) (int64, bool) {
	if len(v) == 0 {
		return 0, false
	}
	neg := false
	i := 0
	if v[0] == '-' || v[0] == '+' {
		neg = v[0] == '-'
		i = 1
		if len(v) == 1 {
			return 0, false
		}
	}
	var n int64
	for ; i < len(v); i++ {
		d := v[i]
		if d < '0' || d > '9' {
			return 0, false
		}
		prev := n
		n = n*10 + int64(d-'0')
		if n < prev {
			return 0, false // overflow
		}
	}
	if neg {
		n = -n
	}
	return n, true
}

// GetInt64 returns the committed value for key parsed as a decimal integer.
// It returns an error if the key is absent or malformed.
func (s *Store) GetInt64(key string) (int64, error) {
	s.mu.Lock()
	if s.rep == nil {
		v, ok := s.committed[key]
		if !ok {
			s.mu.Unlock()
			return 0, fmt.Errorf("stable: key %q not present", key)
		}
		n, ok := parseDecimal(v)
		s.mu.Unlock()
		if !ok {
			return 0, fmt.Errorf("stable: key %q: malformed integer %q", key, v)
		}
		return n, nil
	}
	s.mu.Unlock()
	v, ok := s.Get(key)
	if !ok {
		return 0, fmt.Errorf("stable: key %q not present", key)
	}
	n, err := strconv.ParseInt(string(v), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("stable: key %q: %w", key, err)
	}
	return n, nil
}

// PutJSON stages the JSON encoding of val.
func (s *Store) PutJSON(key string, val any) error {
	data, err := json.Marshal(val)
	if err != nil {
		return fmt.Errorf("stable: encoding %q: %w", key, err)
	}
	s.putOwned(key, data)
	return nil
}

// GetJSON decodes the committed value for key into out. It returns false
// with a nil error if the key is absent.
func (s *Store) GetJSON(key string, out any) (bool, error) {
	v, ok := s.Get(key)
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(v, out); err != nil {
		return false, fmt.Errorf("stable: decoding %q: %w", key, err)
	}
	return true, nil
}

// Region returns a view of the store in which every key is transparently
// prefixed. Regions give each application a private namespace within its
// processor's stable storage while sharing the same frame-atomic commit.
func (s *Store) Region(prefix string) *Region {
	return &Region{store: s, prefix: prefix + "/"}
}

// Region is a prefixed view of a Store. All operations address keys within
// the region's namespace; Commit and Discard remain whole-store operations
// performed by the frame runtime, not by region holders.
type Region struct {
	store  *Store
	prefix string

	// keyMu guards keys, a bounded cache of prefixed key strings. The keys an
	// application touches every frame form a small fixed set; caching the
	// concatenation removes a per-access string allocation from the frame
	// loop. Callers with unbounded key spaces (journal sequence keys) fall
	// back to plain concatenation once the cache is full.
	keyMu sync.Mutex
	keys  map[string]string
}

// regionKeyCacheMax bounds the per-region key cache.
const regionKeyCacheMax = 64

// key returns prefix+k, cached for the small per-frame working set.
func (r *Region) key(k string) string {
	r.keyMu.Lock()
	full, ok := r.keys[k]
	if !ok {
		full = r.prefix + k
		if r.keys == nil {
			r.keys = make(map[string]string, 8)
		}
		if len(r.keys) < regionKeyCacheMax {
			r.keys[k] = full
		}
	}
	r.keyMu.Unlock()
	return full
}

// Get returns the committed value for key within the region.
func (r *Region) Get(key string) ([]byte, bool) { return r.store.Get(r.key(key)) }

// GetInto appends the committed value for key within the region to buf[:0].
func (r *Region) GetInto(buf []byte, key string) ([]byte, bool) {
	return r.store.GetInto(buf, r.key(key))
}

// Put stages a write within the region.
func (r *Region) Put(key string, val []byte) { r.store.Put(r.key(key), val) }

// Delete stages a removal within the region.
func (r *Region) Delete(key string) { r.store.Delete(r.key(key)) }

// PutString stages a string value within the region.
func (r *Region) PutString(key, val string) { r.store.PutString(r.key(key), val) }

// GetString returns the committed string value for key within the region.
func (r *Region) GetString(key string) (string, bool) { return r.store.GetString(r.key(key)) }

// PutInt64 stages an integer value within the region.
func (r *Region) PutInt64(key string, val int64) { r.store.PutInt64(r.key(key), val) }

// GetInt64 returns the committed integer value for key within the region.
func (r *Region) GetInt64(key string) (int64, error) { return r.store.GetInt64(r.key(key)) }

// PutJSON stages the JSON encoding of val within the region.
func (r *Region) PutJSON(key string, val any) error { return r.store.PutJSON(r.key(key), val) }

// GetJSON decodes the committed value for key within the region into out.
func (r *Region) GetJSON(key string, out any) (bool, error) {
	return r.store.GetJSON(r.key(key), out)
}

// Snapshot returns a deep copy of the committed entries in the region, with
// the region prefix stripped.
func (r *Region) Snapshot() map[string][]byte {
	scoped := r.store.SnapshotPrefix(r.prefix)
	out := make(map[string][]byte, len(scoped))
	for k, v := range scoped {
		out[strings.TrimPrefix(k, r.prefix)] = v
	}
	return out
}

// Restore stages every entry of snap into the region.
func (r *Region) Restore(snap map[string][]byte) {
	for k, v := range snap {
		r.Put(k, v)
	}
}

// Keys returns the committed keys in the region (prefix stripped), sorted.
func (r *Region) Keys() []string {
	keys := r.store.Keys(r.prefix)
	out := make([]string, len(keys))
	for i, k := range keys {
		out[i] = strings.TrimPrefix(k, r.prefix)
	}
	return out
}
