package spec

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"
)

// validSpec builds a structurally valid two-application, two-configuration
// specification used as the baseline for mutation tests.
func validSpec() *ReconfigSpec {
	return &ReconfigSpec{
		Name: "test-system",
		Apps: []App{
			{
				ID: "ctrl",
				Specs: []Specification{
					{ID: "full", Resources: Resources{CPU: 4, MemoryKB: 256, PowerMW: 400}, HaltFrames: 1, PrepareFrames: 1, InitFrames: 1},
					{ID: "basic", Resources: Resources{CPU: 1, MemoryKB: 64, PowerMW: 100}, HaltFrames: 1, PrepareFrames: 1, InitFrames: 1},
				},
			},
			{
				ID: "nav",
				Specs: []Specification{
					{ID: "full", Resources: Resources{CPU: 2, MemoryKB: 128, PowerMW: 200}, HaltFrames: 1, PrepareFrames: 1, InitFrames: 1},
				},
			},
			{
				ID:      "power-monitor",
				Virtual: true,
				Specs: []Specification{
					{ID: "monitor", HaltFrames: 1, PrepareFrames: 1, InitFrames: 1},
				},
			},
		},
		Configs: []Configuration{
			{
				ID:         "full",
				Assignment: map[AppID]SpecID{"ctrl": "full", "nav": "full"},
				Placement:  map[AppID]ProcID{"ctrl": "p1", "nav": "p2"},
			},
			{
				ID:         "degraded",
				Assignment: map[AppID]SpecID{"ctrl": "basic", "nav": SpecOff},
				Placement:  map[AppID]ProcID{"ctrl": "p1"},
				Safe:       true,
			},
		},
		Transitions: []Transition{
			{From: "full", To: "degraded", MaxFrames: 6},
			{From: "degraded", To: "full", MaxFrames: 6},
		},
		Choice: ChoiceTable{
			"full": {
				"env-ok":  "full",
				"env-low": "degraded",
			},
			"degraded": {
				"env-ok":  "full",
				"env-low": "degraded",
			},
		},
		Envs:        []EnvState{"env-ok", "env-low"},
		StartConfig: "full",
		StartEnv:    "env-ok",
		Deps: []Dependency{
			{Independent: "ctrl", Dependent: "nav", Phase: PhaseInit},
		},
		Platform: Platform{Procs: []Proc{
			{ID: "p1", Capacity: Resources{CPU: 8, MemoryKB: 1024, PowerMW: 1000}},
			{ID: "p2", Capacity: Resources{CPU: 8, MemoryKB: 1024, PowerMW: 1000}},
		}},
		FrameLen: 20 * time.Millisecond,
		Retarget: RetargetBuffer,
	}
}

func TestValidSpecValidates(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec failed validation: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*ReconfigSpec)
		wantSub string
	}{
		{
			name:    "empty name",
			mutate:  func(rs *ReconfigSpec) { rs.Name = "" },
			wantSub: "name must be non-empty",
		},
		{
			name:    "non-positive frame length",
			mutate:  func(rs *ReconfigSpec) { rs.FrameLen = 0 },
			wantSub: "frame length must be positive",
		},
		{
			name:    "negative dwell",
			mutate:  func(rs *ReconfigSpec) { rs.DwellFrames = -1 },
			wantSub: "dwell frames must be non-negative",
		},
		{
			name:    "bad retarget policy",
			mutate:  func(rs *ReconfigSpec) { rs.Retarget = 0 },
			wantSub: "retarget policy",
		},
		{
			name:    "no apps",
			mutate:  func(rs *ReconfigSpec) { rs.Apps = nil },
			wantSub: "application set must be non-empty",
		},
		{
			name:    "duplicate app",
			mutate:  func(rs *ReconfigSpec) { rs.Apps = append(rs.Apps, rs.Apps[0]) },
			wantSub: `duplicate application identifier "ctrl"`,
		},
		{
			name:    "app without specs",
			mutate:  func(rs *ReconfigSpec) { rs.Apps[1].Specs = nil },
			wantSub: `application "nav" declares no specifications`,
		},
		{
			name:    "reserved off spec",
			mutate:  func(rs *ReconfigSpec) { rs.Apps[0].Specs[0].ID = SpecOff },
			wantSub: `reserved specification "off"`,
		},
		{
			name:    "duplicate spec in app",
			mutate:  func(rs *ReconfigSpec) { rs.Apps[0].Specs[1].ID = "full" },
			wantSub: `duplicate specification "full"`,
		},
		{
			name:    "zero phase bound",
			mutate:  func(rs *ReconfigSpec) { rs.Apps[0].Specs[0].HaltFrames = 0 },
			wantSub: "every phase bound must be >= 1 frame",
		},
		{
			name:    "no processors",
			mutate:  func(rs *ReconfigSpec) { rs.Platform.Procs = nil },
			wantSub: "at least one processor",
		},
		{
			name:    "duplicate processor",
			mutate:  func(rs *ReconfigSpec) { rs.Platform.Procs[1].ID = "p1" },
			wantSub: `duplicate processor identifier "p1"`,
		},
		{
			name:    "no configs",
			mutate:  func(rs *ReconfigSpec) { rs.Configs = nil },
			wantSub: "configuration set must be non-empty",
		},
		{
			name:    "duplicate config",
			mutate:  func(rs *ReconfigSpec) { rs.Configs[1].ID = "full" },
			wantSub: `duplicate configuration identifier "full"`,
		},
		{
			name:    "missing assignment",
			mutate:  func(rs *ReconfigSpec) { delete(rs.Configs[0].Assignment, "nav") },
			wantSub: `configuration "full" does not assign application "nav"`,
		},
		{
			name:    "assignment to undeclared app",
			mutate:  func(rs *ReconfigSpec) { rs.Configs[0].Assignment["ghost"] = "full" },
			wantSub: `assigns undeclared application "ghost"`,
		},
		{
			name:    "assignment to virtual app",
			mutate:  func(rs *ReconfigSpec) { rs.Configs[0].Assignment["power-monitor"] = "monitor" },
			wantSub: `assigns virtual application "power-monitor"`,
		},
		{
			name:    "assignment to unimplemented spec",
			mutate:  func(rs *ReconfigSpec) { rs.Configs[0].Assignment["nav"] = "basic" },
			wantSub: `specification "basic" which it does not implement`,
		},
		{
			name:    "running app unplaced",
			mutate:  func(rs *ReconfigSpec) { delete(rs.Configs[0].Placement, "nav") },
			wantSub: `runs application "nav" but does not place it`,
		},
		{
			name:    "placement on undeclared processor",
			mutate:  func(rs *ReconfigSpec) { rs.Configs[0].Placement["nav"] = "ghost-proc" },
			wantSub: `undeclared processor "ghost-proc"`,
		},
		{
			name:    "placement of unassigned app",
			mutate:  func(rs *ReconfigSpec) { rs.Configs[1].Placement["nav"] = "p1" },
			wantSub: `places unassigned application`,
		},
		{
			name:    "low-power undeclared proc",
			mutate:  func(rs *ReconfigSpec) { rs.Configs[0].LowPower = []ProcID{"ghost"} },
			wantSub: `marks undeclared processor "ghost" low-power`,
		},
		{
			name:    "transition from undeclared config",
			mutate:  func(rs *ReconfigSpec) { rs.Transitions[0].From = "ghost" },
			wantSub: "source is not a declared configuration",
		},
		{
			name:    "non-positive transition bound",
			mutate:  func(rs *ReconfigSpec) { rs.Transitions[0].MaxFrames = 0 },
			wantSub: "bound must be >= 1 frame",
		},
		{
			name: "duplicate transition",
			mutate: func(rs *ReconfigSpec) {
				rs.Transitions = append(rs.Transitions, rs.Transitions[0])
			},
			wantSub: `duplicate transition "full" -> "degraded"`,
		},
		{
			name:    "no env states",
			mutate:  func(rs *ReconfigSpec) { rs.Envs = nil },
			wantSub: "environment state set must be non-empty",
		},
		{
			name:    "duplicate env state",
			mutate:  func(rs *ReconfigSpec) { rs.Envs = append(rs.Envs, "env-ok") },
			wantSub: `duplicate environment state "env-ok"`,
		},
		{
			name:    "choice row for undeclared config",
			mutate:  func(rs *ReconfigSpec) { rs.Choice["ghost"] = map[EnvState]ConfigID{"env-ok": "full"} },
			wantSub: `choice table row for undeclared configuration "ghost"`,
		},
		{
			name:    "choice entry undeclared env",
			mutate:  func(rs *ReconfigSpec) { rs.Choice["full"]["env-ghost"] = "full" },
			wantSub: `undeclared environment state`,
		},
		{
			name:    "choice entry undeclared target",
			mutate:  func(rs *ReconfigSpec) { rs.Choice["full"]["env-ok"] = "ghost" },
			wantSub: `target "ghost" is not a declared configuration`,
		},
		{
			name:    "choice entry without transition",
			mutate:  func(rs *ReconfigSpec) { rs.Transitions = rs.Transitions[1:] },
			wantSub: `is not a declared transition`,
		},
		{
			name:    "dependency on undeclared app",
			mutate:  func(rs *ReconfigSpec) { rs.Deps[0].Independent = "ghost" },
			wantSub: `undeclared independent application "ghost"`,
		},
		{
			name:    "self dependency",
			mutate:  func(rs *ReconfigSpec) { rs.Deps[0].Dependent = "ctrl" },
			wantSub: `cannot depend on itself`,
		},
		{
			name:    "dependency invalid phase",
			mutate:  func(rs *ReconfigSpec) { rs.Deps[0].Phase = PhaseNormal },
			wantSub: "invalid phase",
		},
		{
			name:    "undeclared start config",
			mutate:  func(rs *ReconfigSpec) { rs.StartConfig = "ghost" },
			wantSub: `start configuration "ghost"`,
		},
		{
			name:    "undeclared start env",
			mutate:  func(rs *ReconfigSpec) { rs.StartEnv = "ghost" },
			wantSub: `start environment "ghost"`,
		},
		{
			name: "no safe config",
			mutate: func(rs *ReconfigSpec) {
				for i := range rs.Configs {
					rs.Configs[i].Safe = false
				}
			},
			wantSub: "at least one configuration must be marked safe",
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rs := validSpec()
			tt.mutate(rs)
			err := rs.Validate()
			if err == nil {
				t.Fatalf("expected validation failure containing %q, got nil", tt.wantSub)
			}
			if !errors.Is(err, ErrInvalid) {
				t.Errorf("error does not wrap ErrInvalid: %v", err)
			}
			if !strings.Contains(err.Error(), tt.wantSub) {
				t.Errorf("error %q does not contain %q", err.Error(), tt.wantSub)
			}
		})
	}
}

func TestResourcesAddFits(t *testing.T) {
	a := Resources{CPU: 1, MemoryKB: 2, PowerMW: 3}
	b := Resources{CPU: 4, MemoryKB: 5, PowerMW: 6}
	sum := a.Add(b)
	want := Resources{CPU: 5, MemoryKB: 7, PowerMW: 9}
	if sum != want {
		t.Errorf("Add = %+v, want %+v", sum, want)
	}
	if !a.Fits(b) {
		t.Errorf("a should fit in b")
	}
	if b.Fits(a) {
		t.Errorf("b should not fit in a")
	}
	if !a.Fits(a) {
		t.Errorf("resources should fit themselves")
	}
}

func TestPhaseString(t *testing.T) {
	tests := []struct {
		p    Phase
		want string
	}{
		{PhaseNormal, "normal"},
		{PhaseHalt, "halt"},
		{PhasePrepare, "prepare"},
		{PhaseInit, "initialize"},
		{Phase(99), "phase(99)"},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.want {
			t.Errorf("Phase(%d).String() = %q, want %q", int(tt.p), got, tt.want)
		}
	}
}

func TestAppSpecLookup(t *testing.T) {
	rs := validSpec()
	app, ok := rs.AppByID("ctrl")
	if !ok {
		t.Fatal("ctrl not found")
	}
	if _, ok := app.Spec("full"); !ok {
		t.Error("ctrl/full not found")
	}
	if _, ok := app.Spec("ghost"); ok {
		t.Error("ctrl/ghost unexpectedly found")
	}
	if _, ok := rs.AppByID("ghost"); ok {
		t.Error("ghost app unexpectedly found")
	}
}

func TestConfigHelpers(t *testing.T) {
	rs := validSpec()
	cfg, ok := rs.Config("degraded")
	if !ok {
		t.Fatal("degraded not found")
	}
	if s, ok := cfg.SpecOf("ctrl"); !ok || s != "basic" {
		t.Errorf("SpecOf(ctrl) = %q, %v; want basic, true", s, ok)
	}
	if s, ok := cfg.SpecOf("nav"); !ok || s != SpecOff {
		t.Errorf("SpecOf(nav) = %q, %v; want off, true", s, ok)
	}
	if _, ok := cfg.SpecOf("ghost"); ok {
		t.Error("SpecOf(ghost) unexpectedly present")
	}
	running := cfg.RunningApps()
	if len(running) != 1 || running[0] != "ctrl" {
		t.Errorf("RunningApps = %v, want [ctrl]", running)
	}
}

func TestTransitionBoundLookup(t *testing.T) {
	rs := validSpec()
	if b, ok := rs.T("full", "degraded"); !ok || b != 6 {
		t.Errorf("T(full, degraded) = %d, %v; want 6, true", b, ok)
	}
	if _, ok := rs.T("degraded", "ghost"); ok {
		t.Error("T to ghost unexpectedly present")
	}
}

func TestSafeConfigs(t *testing.T) {
	rs := validSpec()
	safe := rs.SafeConfigs()
	if len(safe) != 1 || safe[0] != "degraded" {
		t.Errorf("SafeConfigs = %v, want [degraded]", safe)
	}
}

func TestRealApps(t *testing.T) {
	rs := validSpec()
	real := rs.RealApps()
	if len(real) != 2 {
		t.Fatalf("RealApps = %d apps, want 2", len(real))
	}
	for _, a := range real {
		if a.Virtual {
			t.Errorf("RealApps returned virtual app %q", a.ID)
		}
	}
}

func TestDepsForPhase(t *testing.T) {
	rs := validSpec()
	if deps := rs.DepsForPhase(PhaseInit); len(deps) != 1 {
		t.Errorf("DepsForPhase(init) = %d deps, want 1", len(deps))
	}
	if deps := rs.DepsForPhase(PhaseHalt); len(deps) != 0 {
		t.Errorf("DepsForPhase(halt) = %d deps, want 0", len(deps))
	}
}

func TestChoiceTableChoose(t *testing.T) {
	rs := validSpec()
	if got, ok := rs.Choice.Choose("full", "env-low"); !ok || got != "degraded" {
		t.Errorf("Choose(full, env-low) = %q, %v; want degraded, true", got, ok)
	}
	if _, ok := rs.Choice.Choose("ghost", "env-low"); ok {
		t.Error("Choose(ghost, ...) unexpectedly present")
	}
	if _, ok := rs.Choice.Choose("full", "env-ghost"); ok {
		t.Error("Choose(..., env-ghost) unexpectedly present")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	rs := validSpec()
	data, err := json.MarshalIndent(rs, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back ReconfigSpec
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if err := back.Validate(); err != nil {
		t.Fatalf("round-tripped spec fails validation: %v", err)
	}
	if back.Name != rs.Name || back.FrameLen != rs.FrameLen || back.Retarget != rs.Retarget {
		t.Errorf("round trip lost fields: got name=%q framelen=%v retarget=%v",
			back.Name, back.FrameLen, back.Retarget)
	}
	if len(back.Apps) != len(rs.Apps) || len(back.Configs) != len(rs.Configs) {
		t.Errorf("round trip lost apps/configs")
	}
	if got, ok := back.Choice.Choose("full", "env-low"); !ok || got != "degraded" {
		t.Errorf("round trip lost choice table")
	}
}

func TestRetargetPolicyJSON(t *testing.T) {
	for _, p := range []RetargetPolicy{RetargetBuffer, RetargetImmediate} {
		data, err := json.Marshal(p)
		if err != nil {
			t.Fatalf("marshal %v: %v", p, err)
		}
		var back RetargetPolicy
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if back != p {
			t.Errorf("round trip %v -> %v", p, back)
		}
	}
	var p RetargetPolicy
	if err := json.Unmarshal([]byte(`"bogus"`), &p); err == nil {
		t.Error("unmarshal of bogus policy succeeded")
	}
	if err := json.Unmarshal([]byte(`42`), &p); err == nil {
		t.Error("unmarshal of numeric policy succeeded")
	}
}

func TestPlatformProcLookup(t *testing.T) {
	rs := validSpec()
	if _, ok := rs.Platform.Proc("p1"); !ok {
		t.Error("p1 not found")
	}
	if _, ok := rs.Platform.Proc("ghost"); ok {
		t.Error("ghost proc unexpectedly found")
	}
}
