// Package spec defines the static vocabulary of an assuredly reconfigurable
// system: application functional specifications, system configurations, the
// transition table, the configuration-choice table, inter-application
// dependencies, and the timing matrix.
//
// The types in this package are the Go rendering of the reconfiguration
// specification of Strunk, Knight and Aiello, "Assured Reconfiguration of
// Fail-Stop Systems" (DSN 2005), section 6. A ReconfigSpec is purely static
// data: it can be validated (this package and package statics), serialized to
// JSON, and interpreted by the SCRAM kernel at run time.
package spec

import (
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"time"
)

// AppID identifies a reconfigurable application. Application identifiers are
// unique within a system.
type AppID string

// SpecID identifies one functional specification of an application. A
// specification identifier is unique within its application's specification
// set.
type SpecID string

// ConfigID identifies a system configuration (a "service level" in the
// paper's formal model, svclvl).
type ConfigID string

// EnvState is a discrete, named state of the system's operating environment.
// Following section 6.3 of the paper, component failures are modeled as
// environment changes, so a processor or sensor failure simply moves the
// environment to a different EnvState.
type EnvState string

// ProcID identifies a fail-stop processor of the computing platform.
type ProcID string

// SpecOff is the distinguished specification meaning "this application is not
// running in this configuration". An application assigned SpecOff is halted
// and consumes no platform resources.
const SpecOff SpecID = "off"

// Phase enumerates the stages of the reconfiguration protocol (Table 1 of the
// paper). Normal operation is included so that per-application status
// variables can carry a single Phase value.
type Phase int

// Reconfiguration phases, in protocol order.
const (
	// PhaseNormal is ordinary operation under the current specification.
	PhaseNormal Phase = iota + 1
	// PhaseHalt is the first protocol stage: the application ceases
	// execution and establishes its postcondition.
	PhaseHalt
	// PhasePrepare is the second protocol stage: the application
	// establishes the condition required to transition to the target
	// specification.
	PhasePrepare
	// PhaseInit is the third protocol stage: the application establishes
	// the precondition of the target specification and resumes operation.
	PhaseInit
)

// String returns the lower-case protocol name of the phase.
func (p Phase) String() string {
	switch p {
	case PhaseNormal:
		return "normal"
	case PhaseHalt:
		return "halt"
	case PhasePrepare:
		return "prepare"
	case PhaseInit:
		return "initialize"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

// Resources models the platform resources a specification consumes or a
// processor provides. Units are abstract but must be consistent across a
// system description.
type Resources struct {
	// CPU is processing capacity in abstract units.
	CPU int `json:"cpu"`
	// MemoryKB is memory footprint in kilobytes.
	MemoryKB int `json:"memory_kb"`
	// PowerMW is electrical power draw (or supply) in milliwatts.
	PowerMW int `json:"power_mw"`
}

// Add returns the component-wise sum of r and o.
func (r Resources) Add(o Resources) Resources {
	return Resources{
		CPU:      r.CPU + o.CPU,
		MemoryKB: r.MemoryKB + o.MemoryKB,
		PowerMW:  r.PowerMW + o.PowerMW,
	}
}

// Fits reports whether r fits within capacity c in every dimension.
func (r Resources) Fits(c Resources) bool {
	return r.CPU <= c.CPU && r.MemoryKB <= c.MemoryKB && r.PowerMW <= c.PowerMW
}

// Specification describes one functional specification an application can
// operate under: its resource footprint and the worst-case duration, in
// real-time frames, of each reconfiguration phase entering or leaving it.
//
// Per section 6.1 of the paper, each phase normally completes one unit of
// work in one frame; the frame counts here allow the generalization to
// multi-frame phases while keeping every phase bounded.
type Specification struct {
	// ID is the specification identifier, unique within the application.
	ID SpecID `json:"id"`
	// Description is free-form documentation of the service provided.
	Description string `json:"description,omitempty"`
	// Resources is the footprint of an application operating under this
	// specification.
	Resources Resources `json:"resources"`
	// HaltFrames is the worst-case number of frames needed to establish
	// the postcondition and halt when leaving this specification. It must
	// be at least 1.
	HaltFrames int `json:"halt_frames"`
	// PrepareFrames is the worst-case number of frames needed to
	// establish the transition condition when this specification is the
	// target. It must be at least 1.
	PrepareFrames int `json:"prepare_frames"`
	// InitFrames is the worst-case number of frames needed to establish
	// the precondition and resume when this specification is the target.
	// It must be at least 1.
	InitFrames int `json:"init_frames"`
}

// App describes a reconfigurable application: its identity and the set of
// functional specifications it implements (S_i in the paper).
type App struct {
	// ID is the application identifier.
	ID AppID `json:"id"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`
	// Specs is the application's specification set. It must be non-empty
	// and must not contain SpecOff (being off is expressed per
	// configuration, not as a specification the app implements).
	Specs []Specification `json:"specs"`
	// Virtual marks environment-monitor applications (section 6.3):
	// applications that exist to observe an environmental factor and
	// signal the SCRAM when it changes. Virtual applications participate
	// in traces but are not reconfigured.
	Virtual bool `json:"virtual,omitempty"`
}

// Spec returns the specification with the given ID, or false if the
// application does not implement it.
func (a *App) Spec(id SpecID) (Specification, bool) {
	for _, s := range a.Specs {
		if s.ID == id {
			return s, true
		}
	}
	return Specification{}, false
}

// Configuration is one acceptable system service: an assignment of a
// functional specification (or SpecOff) to every application, together with a
// static placement of running applications onto processors.
//
// This is the function f: Apps -> S of the paper's formal definition of
// reconfiguration, plus the static process-to-node mapping the architecture
// assumes.
type Configuration struct {
	// ID is the configuration identifier.
	ID ConfigID `json:"id"`
	// Description is free-form documentation.
	Description string `json:"description,omitempty"`
	// Assignment maps every application to the specification it operates
	// under in this configuration, or SpecOff.
	Assignment map[AppID]SpecID `json:"assignment"`
	// Placement maps every running (non-off) application to the processor
	// that hosts it in this configuration.
	Placement map[AppID]ProcID `json:"placement"`
	// Safe marks the configuration as a "safe" configuration in the sense
	// of section 4: one dependable enough that the system can remain in it
	// indefinitely without compromising dependability goals.
	Safe bool `json:"safe,omitempty"`
	// LowPower lists processors that must operate in low-power mode in
	// this configuration.
	LowPower []ProcID `json:"low_power,omitempty"`
}

// SpecOf returns the specification assigned to app in this configuration.
// The second result is false if the configuration does not mention the app.
func (c *Configuration) SpecOf(app AppID) (SpecID, bool) {
	s, ok := c.Assignment[app]
	return s, ok
}

// RunningApps returns the identifiers of applications that are not off in
// this configuration, in deterministic (sorted) order.
func (c *Configuration) RunningApps() []AppID {
	apps := make([]AppID, 0, len(c.Assignment))
	for id, s := range c.Assignment {
		if s != SpecOff {
			apps = append(apps, id)
		}
	}
	sort.Slice(apps, func(i, j int) bool { return apps[i] < apps[j] })
	return apps
}

// PlacedProcs returns the processors this configuration places applications
// on, deduplicated, in deterministic (sorted) order.
func (c *Configuration) PlacedProcs() []ProcID {
	seen := make(map[ProcID]bool, len(c.Placement))
	for _, p := range c.Placement {
		seen[p] = true
	}
	procs := make([]ProcID, 0, len(seen))
	for p := range seen {
		procs = append(procs, p)
	}
	sort.Slice(procs, func(i, j int) bool { return procs[i] < procs[j] })
	return procs
}

// Transition is one statically-permitted system transition together with its
// worst-case duration bound T(from, to), expressed in frames. The bound
// covers the full reconfiguration window as observed in a system trace
// (trigger frame through the frame in which every application operates under
// the target configuration), so SP3 can be checked as
//
//	(end_c - start_c + 1) * cycle_time <= T(from, to) * cycle_time.
type Transition struct {
	From ConfigID `json:"from"`
	To   ConfigID `json:"to"`
	// MaxFrames is the inclusive bound on the reconfiguration window
	// length in frames.
	MaxFrames int `json:"max_frames"`
}

// Dependency is a phase-scoped ordering constraint between two applications
// during reconfiguration: the Dependent application may not begin the given
// Phase until the Independent application has completed that phase.
//
// Section 6.1 requires only that the independent application be halted
// before the dependent application computes its precondition; richer (still
// acyclic) dependencies are supported per section 6.3.
type Dependency struct {
	Independent AppID `json:"independent"`
	Dependent   AppID `json:"dependent"`
	Phase       Phase `json:"phase"`
}

// ChoiceTable is the SCRAM's statically-defined configuration choice
// function: it maps (current configuration, environment state) to the
// configuration the system must move to. An entry equal to the current
// configuration means "no reconfiguration required".
type ChoiceTable map[ConfigID]map[EnvState]ConfigID

// Choose returns the target configuration for the given current
// configuration and environment state. The second result is false if the
// table has no entry, which a validated specification guarantees cannot
// happen for reachable pairs (the covering_txns obligation).
func (t ChoiceTable) Choose(cur ConfigID, env EnvState) (ConfigID, bool) {
	row, ok := t[cur]
	if !ok {
		return "", false
	}
	target, ok := row[env]
	return target, ok
}

// Proc describes one fail-stop processor of the computing platform.
type Proc struct {
	// ID is the processor identifier.
	ID ProcID `json:"id"`
	// Capacity is the resource capacity in normal operation.
	Capacity Resources `json:"capacity"`
	// LowPowerCapacity is the (reduced) capacity in low-power mode. Zero
	// values mean the processor has no low-power mode.
	LowPowerCapacity Resources `json:"low_power_capacity,omitempty"`
}

// Platform describes the computing platform: the set of fail-stop processors
// available to host applications.
type Platform struct {
	Procs []Proc `json:"procs"`
}

// Proc returns the processor with the given ID, or false if the platform has
// no such processor.
func (p *Platform) Proc(id ProcID) (Proc, bool) {
	for _, pr := range p.Procs {
		if pr.ID == id {
			return pr, true
		}
	}
	return Proc{}, false
}

// RetargetPolicy selects how the SCRAM handles a failure (or other
// environment change) that arrives while a reconfiguration is already in
// progress (section 5.3).
type RetargetPolicy int

const (
	// RetargetBuffer buffers the new trigger until the current
	// reconfiguration completes, then starts a new reconfiguration. This
	// is the policy assumed by the worst-case restriction-time formula
	// (the sum of bounds along the transition chain).
	RetargetBuffer RetargetPolicy = iota + 1
	// RetargetImmediate re-chooses the target as soon as every
	// application has established its postcondition, re-running the
	// prepare and initialize phases for the new target. The transition
	// bound T(from, finalTo) must be sized to cover one retargeting.
	RetargetImmediate
)

// String returns the policy name.
func (p RetargetPolicy) String() string {
	switch p {
	case RetargetBuffer:
		return "buffer"
	case RetargetImmediate:
		return "immediate"
	default:
		return fmt.Sprintf("retarget(%d)", int(p))
	}
}

// MarshalJSON encodes the policy as its name.
func (p RetargetPolicy) MarshalJSON() ([]byte, error) {
	return json.Marshal(p.String())
}

// UnmarshalJSON decodes a policy from its name.
func (p *RetargetPolicy) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	switch s {
	case "buffer":
		*p = RetargetBuffer
	case "immediate":
		*p = RetargetImmediate
	default:
		return fmt.Errorf("spec: unknown retarget policy %q", s)
	}
	return nil
}

// ReconfigSpec is the complete reconfiguration specification of a system: the
// application set, the acceptable configurations, the permitted transitions
// and their bounds, the configuration choice table, reachable environment
// states, inter-application dependencies, the platform, and global timing
// parameters.
//
// A ReconfigSpec is inert data. Validate checks local well-formedness;
// package statics discharges the deeper proof obligations (coverage,
// acyclicity, timing consistency, resource feasibility).
type ReconfigSpec struct {
	// Name identifies the system, for reports.
	Name string `json:"name"`
	// Apps is the application set (Apps in the paper).
	Apps []App `json:"apps"`
	// Configs is the set of acceptable configurations (C in the paper).
	Configs []Configuration `json:"configs"`
	// Transitions is the statically-defined set of valid transitions with
	// their timing bounds.
	Transitions []Transition `json:"transitions"`
	// Choice is the configuration choice table.
	Choice ChoiceTable `json:"choice"`
	// Envs enumerates the reachable environment states.
	Envs []EnvState `json:"envs"`
	// StartConfig is the configuration the system boots into.
	StartConfig ConfigID `json:"start_config"`
	// StartEnv is the environment state assumed at boot.
	StartEnv EnvState `json:"start_env"`
	// Deps are the phase-scoped reconfiguration dependencies.
	Deps []Dependency `json:"deps,omitempty"`
	// Platform describes the processors available.
	Platform Platform `json:"platform"`
	// FrameLen is the real-time frame length (cycle_time). It must be
	// positive.
	FrameLen time.Duration `json:"frame_len_ns"`
	// DwellFrames is the minimum number of frames the system must remain
	// in a configuration before a subsequent reconfiguration may begin.
	// It is the cycle guard of section 5.3; zero disables the guard.
	DwellFrames int `json:"dwell_frames,omitempty"`
	// Compression enables the section 6.3 relaxation: applications
	// complete their protocol stages back to back without waiting for
	// global phase barriers, subject to (a) same-phase dependency
	// ordering and (b) the section 6.1 guard that every independent an
	// application waits on has halted before the application computes
	// its transition condition. Compression shortens windows whenever
	// applications' phase durations are heterogeneous.
	Compression bool `json:"compression,omitempty"`
	// Retarget selects the failure-during-reconfiguration policy.
	Retarget RetargetPolicy `json:"retarget"`
}

// AppByID returns the application with the given ID, or false.
func (rs *ReconfigSpec) AppByID(id AppID) (*App, bool) {
	for i := range rs.Apps {
		if rs.Apps[i].ID == id {
			return &rs.Apps[i], true
		}
	}
	return nil, false
}

// Config returns the configuration with the given ID, or false.
func (rs *ReconfigSpec) Config(id ConfigID) (*Configuration, bool) {
	for i := range rs.Configs {
		if rs.Configs[i].ID == id {
			return &rs.Configs[i], true
		}
	}
	return nil, false
}

// T returns the transition bound T(from, to) in frames. The second result is
// false if the transition is not in the statically-permitted set.
func (rs *ReconfigSpec) T(from, to ConfigID) (int, bool) {
	for _, t := range rs.Transitions {
		if t.From == from && t.To == to {
			return t.MaxFrames, true
		}
	}
	return 0, false
}

// SafeConfigs returns the identifiers of all safe configurations, sorted.
func (rs *ReconfigSpec) SafeConfigs() []ConfigID {
	var ids []ConfigID
	for _, c := range rs.Configs {
		if c.Safe {
			ids = append(ids, c.ID)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// RealApps returns the non-virtual applications, in declaration order.
func (rs *ReconfigSpec) RealApps() []App {
	var apps []App
	for _, a := range rs.Apps {
		if !a.Virtual {
			apps = append(apps, a)
		}
	}
	return apps
}

// DepsForPhase returns the dependencies scoped to the given phase.
func (rs *ReconfigSpec) DepsForPhase(p Phase) []Dependency {
	var deps []Dependency
	for _, d := range rs.Deps {
		if d.Phase == p {
			deps = append(deps, d)
		}
	}
	return deps
}

// MarshalJSON writes the specification with FrameLen in nanoseconds.
func (rs *ReconfigSpec) MarshalJSON() ([]byte, error) {
	type alias ReconfigSpec // strip methods to avoid recursion
	return json.Marshal((*alias)(rs))
}

// UnmarshalJSON reads a specification previously written by MarshalJSON.
func (rs *ReconfigSpec) UnmarshalJSON(b []byte) error {
	type alias ReconfigSpec
	if err := json.Unmarshal(b, (*alias)(rs)); err != nil {
		return fmt.Errorf("spec: decoding reconfiguration specification: %w", err)
	}
	return nil
}

// ErrInvalid is wrapped by every validation error this package reports, so
// callers can test for the class with errors.Is.
var ErrInvalid = errors.New("invalid reconfiguration specification")
