package spec

import (
	"fmt"

	"repro/internal/det"
)

// Validate checks the local well-formedness of the specification: identifier
// uniqueness, referential integrity (assignments, placements, transitions,
// choice-table entries, dependencies all name declared entities), and basic
// sanity of numeric fields.
//
// Validate does not discharge the deeper proof obligations — transition
// coverage, dependency acyclicity, timing consistency, resource feasibility —
// which live in package statics because they mirror the paper's generated
// TCCs rather than simple structural rules.
//
// All problems found are reported together; the returned error wraps
// ErrInvalid.
func (rs *ReconfigSpec) Validate() error {
	var v validator
	v.spec(rs)
	return v.err()
}

// validator accumulates validation failures.
type validator struct {
	problems []string
	// Sorted-key scratch buffers, reused across the per-configuration and
	// per-row loops (membership re-verifies the spec inside a join frame,
	// so validation cost is frame-path cost).
	appScratch []AppID
	cfgScratch []ConfigID
	envScratch []EnvState
}

func (v *validator) addf(format string, args ...any) {
	v.problems = append(v.problems, fmt.Sprintf(format, args...))
}

func (v *validator) err() error {
	if len(v.problems) == 0 {
		return nil
	}
	return &ValidationError{Problems: v.problems}
}

// ValidationError reports every structural problem found in a
// reconfiguration specification.
type ValidationError struct {
	Problems []string
}

// Error lists the problems, one per line.
func (e *ValidationError) Error() string {
	msg := fmt.Sprintf("%v: %d problem(s)", ErrInvalid, len(e.Problems))
	for _, p := range e.Problems {
		msg += "\n  - " + p
	}
	return msg
}

// Unwrap lets errors.Is(err, ErrInvalid) succeed.
func (e *ValidationError) Unwrap() error { return ErrInvalid }

func (v *validator) spec(rs *ReconfigSpec) {
	if rs.Name == "" {
		v.addf("name must be non-empty")
	}
	if rs.FrameLen <= 0 {
		v.addf("frame length must be positive, got %v", rs.FrameLen)
	}
	if rs.DwellFrames < 0 {
		v.addf("dwell frames must be non-negative, got %d", rs.DwellFrames)
	}
	if rs.Retarget != RetargetBuffer && rs.Retarget != RetargetImmediate {
		v.addf("retarget policy must be buffer or immediate, got %v", rs.Retarget)
	}

	v.apps(rs)
	v.platform(rs)
	v.configs(rs)
	v.transitions(rs)
	v.choice(rs)
	v.deps(rs)

	if _, ok := rs.Config(rs.StartConfig); !ok {
		v.addf("start configuration %q is not a declared configuration", rs.StartConfig)
	}
	if !envDeclared(rs, rs.StartEnv) {
		v.addf("start environment %q is not a declared environment state", rs.StartEnv)
	}
	if len(rs.SafeConfigs()) == 0 {
		v.addf("at least one configuration must be marked safe (section 4 assumption)")
	}
}

func envDeclared(rs *ReconfigSpec, e EnvState) bool {
	for _, d := range rs.Envs {
		if d == e {
			return true
		}
	}
	return false
}

func (v *validator) apps(rs *ReconfigSpec) {
	if len(rs.Apps) == 0 {
		v.addf("application set must be non-empty")
	}
	seen := make(map[AppID]bool, len(rs.Apps))
	for _, a := range rs.Apps {
		if a.ID == "" {
			v.addf("application with empty identifier")
			continue
		}
		if seen[a.ID] {
			v.addf("duplicate application identifier %q", a.ID)
		}
		seen[a.ID] = true
		if len(a.Specs) == 0 {
			v.addf("application %q declares no specifications", a.ID)
		}
		specSeen := make(map[SpecID]bool, len(a.Specs))
		for _, s := range a.Specs {
			switch {
			case s.ID == "":
				v.addf("application %q has a specification with empty identifier", a.ID)
			case s.ID == SpecOff:
				v.addf("application %q declares reserved specification %q", a.ID, SpecOff)
			case specSeen[s.ID]:
				v.addf("application %q declares duplicate specification %q", a.ID, s.ID)
			}
			specSeen[s.ID] = true
			if s.HaltFrames < 1 || s.PrepareFrames < 1 || s.InitFrames < 1 {
				v.addf("application %q specification %q: every phase bound must be >= 1 frame (halt=%d prepare=%d init=%d)",
					a.ID, s.ID, s.HaltFrames, s.PrepareFrames, s.InitFrames)
			}
		}
	}
}

func (v *validator) platform(rs *ReconfigSpec) {
	if len(rs.Platform.Procs) == 0 {
		v.addf("platform must declare at least one processor")
	}
	seen := make(map[ProcID]bool, len(rs.Platform.Procs))
	for _, p := range rs.Platform.Procs {
		if p.ID == "" {
			v.addf("processor with empty identifier")
			continue
		}
		if seen[p.ID] {
			v.addf("duplicate processor identifier %q", p.ID)
		}
		seen[p.ID] = true
	}
}

func (v *validator) configs(rs *ReconfigSpec) {
	if len(rs.Configs) == 0 {
		v.addf("configuration set must be non-empty")
	}
	seen := make(map[ConfigID]bool, len(rs.Configs))
	for i := range rs.Configs {
		c := &rs.Configs[i]
		if c.ID == "" {
			v.addf("configuration with empty identifier")
			continue
		}
		if seen[c.ID] {
			v.addf("duplicate configuration identifier %q", c.ID)
		}
		seen[c.ID] = true
		v.configAssignment(rs, c)
	}
}

func (v *validator) configAssignment(rs *ReconfigSpec, c *Configuration) {
	// Every real application must be assigned; every assignment must name
	// a declared app and one of its specs (or off); every running app must
	// be placed on a declared processor.
	for _, a := range rs.Apps {
		if a.Virtual {
			continue
		}
		if _, ok := c.Assignment[a.ID]; !ok {
			v.addf("configuration %q does not assign application %q", c.ID, a.ID)
		}
	}
	// Sorted iteration keeps the problem list identical run to run
	// (framedet: map order must not shape validator output).
	v.appScratch = det.SortedKeysInto(v.appScratch, c.Assignment)
	for _, appID := range v.appScratch {
		specID := c.Assignment[appID]
		a, ok := rs.AppByID(appID)
		if !ok {
			v.addf("configuration %q assigns undeclared application %q", c.ID, appID)
			continue
		}
		if a.Virtual {
			v.addf("configuration %q assigns virtual application %q (virtual applications are not configured)", c.ID, appID)
			continue
		}
		if specID == SpecOff {
			continue
		}
		if _, ok := a.Spec(specID); !ok {
			v.addf("configuration %q assigns application %q specification %q which it does not implement",
				c.ID, appID, specID)
			continue
		}
		proc, ok := c.Placement[appID]
		if !ok {
			v.addf("configuration %q runs application %q but does not place it on a processor", c.ID, appID)
			continue
		}
		if _, ok := rs.Platform.Proc(proc); !ok {
			v.addf("configuration %q places application %q on undeclared processor %q", c.ID, appID, proc)
		}
	}
	v.appScratch = det.SortedKeysInto(v.appScratch, c.Placement)
	for _, appID := range v.appScratch {
		if s, ok := c.Assignment[appID]; !ok || s == SpecOff {
			v.addf("configuration %q places unassigned application %q", c.ID, appID)
		}
	}
	for _, lp := range c.LowPower {
		if _, ok := rs.Platform.Proc(lp); !ok {
			v.addf("configuration %q marks undeclared processor %q low-power", c.ID, lp)
		}
	}
}

func (v *validator) transitions(rs *ReconfigSpec) {
	type edge struct{ from, to ConfigID }
	seen := make(map[edge]bool, len(rs.Transitions))
	for _, t := range rs.Transitions {
		if _, ok := rs.Config(t.From); !ok {
			v.addf("transition %q -> %q: source is not a declared configuration", t.From, t.To)
		}
		if _, ok := rs.Config(t.To); !ok {
			v.addf("transition %q -> %q: target is not a declared configuration", t.From, t.To)
		}
		// Self-transitions are permitted: under the immediate retarget
		// policy a mid-reconfiguration re-choice can land back on the
		// source configuration, and SP3 then needs a declared bound.
		if t.MaxFrames < 1 {
			v.addf("transition %q -> %q: bound must be >= 1 frame, got %d", t.From, t.To, t.MaxFrames)
		}
		e := edge{t.From, t.To}
		if seen[e] {
			v.addf("duplicate transition %q -> %q", t.From, t.To)
		}
		seen[e] = true
	}
}

func (v *validator) choice(rs *ReconfigSpec) {
	if len(rs.Envs) == 0 {
		v.addf("environment state set must be non-empty")
	}
	seenEnv := make(map[EnvState]bool, len(rs.Envs))
	for _, e := range rs.Envs {
		if e == "" {
			v.addf("environment state with empty name")
		}
		if seenEnv[e] {
			v.addf("duplicate environment state %q", e)
		}
		seenEnv[e] = true
	}
	v.cfgScratch = det.SortedKeysInto(v.cfgScratch, rs.Choice)
	for _, from := range v.cfgScratch {
		row := rs.Choice[from]
		if _, ok := rs.Config(from); !ok {
			v.addf("choice table row for undeclared configuration %q", from)
		}
		v.envScratch = det.SortedKeysInto(v.envScratch, row)
		for _, env := range v.envScratch {
			to := row[env]
			if !seenEnv[env] {
				v.addf("choice table entry (%q, %q): undeclared environment state", from, env)
			}
			if _, ok := rs.Config(to); !ok {
				v.addf("choice table entry (%q, %q): target %q is not a declared configuration", from, env, to)
			}
			if to != from {
				if _, ok := rs.T(from, to); !ok {
					v.addf("choice table entry (%q, %q) -> %q is not a declared transition", from, env, to)
				}
			}
		}
	}
}

func (v *validator) deps(rs *ReconfigSpec) {
	for _, d := range rs.Deps {
		if _, ok := rs.AppByID(d.Independent); !ok {
			v.addf("dependency names undeclared independent application %q", d.Independent)
		}
		if _, ok := rs.AppByID(d.Dependent); !ok {
			v.addf("dependency names undeclared dependent application %q", d.Dependent)
		}
		if d.Independent == d.Dependent {
			v.addf("application %q cannot depend on itself", d.Dependent)
		}
		switch d.Phase {
		case PhaseHalt, PhasePrepare, PhaseInit:
		default:
			v.addf("dependency %q -> %q has invalid phase %v (must be halt, prepare, or initialize)",
				d.Independent, d.Dependent, d.Phase)
		}
	}
}
