package trace_test

import (
	"fmt"
	"time"

	"repro/internal/spec"
	"repro/internal/trace"
)

// A minimal recorded execution: two normal cycles, one three-cycle
// reconfiguration window, then normal operation under the new
// configuration. Reconfigs extracts the window; the checkers evaluate the
// formal properties over it.
func ExampleTrace_Reconfigs() {
	tr := &trace.Trace{System: "example", FrameLen: 20 * time.Millisecond}
	app := func(st trace.ReconfStatus) map[spec.AppID]trace.AppState {
		return map[spec.AppID]trace.AppState{"ctl": {Status: st, Spec: "full", PreOK: true}}
	}
	states := []trace.SysState{
		{Cycle: 0, Config: "normal", Env: "ok", Apps: app(trace.StatusNormal)},
		{Cycle: 1, Config: "normal", Env: "low", Apps: app(trace.StatusInterrupted)},
		{Cycle: 2, Config: "normal", Env: "low", Apps: app(trace.StatusPreparing)},
		{Cycle: 3, Config: "fallback", Env: "low", Apps: app(trace.StatusNormal)},
	}
	for _, st := range states {
		if err := tr.Append(st); err != nil {
			panic(err)
		}
	}
	for _, r := range tr.Reconfigs() {
		fmt.Printf("window [%d,%d]: %s -> %s (%d frames)\n", r.StartC, r.EndC, r.From, r.To, r.Frames())
	}
	fmt.Println("restriction frames:", tr.RestrictionFrames())
	// Output:
	// window [1,3]: normal -> fallback (3 frames)
	// restriction frames: 2
}
