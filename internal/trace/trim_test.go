package trace

import (
	"encoding/json"
	"testing"

	"repro/internal/spec"
)

func trimTestTrace(t *testing.T, cycles int64) *Trace {
	t.Helper()
	tr := &Trace{System: "trim-test"}
	for c := int64(0); c < cycles; c++ {
		status := StatusNormal
		// cycles 10..12 restricted: one completed reconfiguration
		if c >= 10 && c < 13 {
			status = StatusHalting
		}
		err := tr.Append(SysState{
			Cycle:  c,
			Config: "full",
			Apps:   map[spec.AppID]AppState{"a": {Status: status, Spec: "s", PreOK: true}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestTrimKeepsAbsoluteCycles(t *testing.T) {
	tr := trimTestTrace(t, 40)
	full := tr.Reconfigs()
	if len(full) != 1 || full[0].StartC != 10 || full[0].EndC != 13 {
		t.Fatalf("untrimmed reconfigs = %+v", full)
	}

	tr.Trim(8)
	if tr.Base != 8 || tr.Len() != 32 || tr.End() != 40 {
		t.Fatalf("after Trim(8): base=%d len=%d end=%d", tr.Base, tr.Len(), tr.End())
	}
	if _, ok := tr.At(7); ok {
		t.Fatal("At(7) visible after trim")
	}
	s, ok := tr.At(10)
	if !ok || s.Cycle != 10 {
		t.Fatalf("At(10) = %+v, %v", s, ok)
	}
	if got := tr.Reconfigs(); len(got) != 1 || got[0] != full[0] {
		t.Fatalf("trimmed reconfigs = %+v, want %+v", got, full)
	}

	// Append continues at the absolute cycle.
	if err := tr.Append(SysState{Cycle: 40, Config: "full",
		Apps: map[spec.AppID]AppState{"a": {Status: StatusNormal, Spec: "s", PreOK: true}}}); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(SysState{Cycle: 40}); err == nil {
		t.Fatal("non-contiguous append accepted")
	}

	// Trim below base and past end are safe.
	tr.Trim(3)
	if tr.Base != 8 {
		t.Fatalf("Trim below base moved base to %d", tr.Base)
	}
	tr.Trim(1000)
	if tr.Base != 41 || tr.Len() != 0 {
		t.Fatalf("Trim past end: base=%d len=%d", tr.Base, tr.Len())
	}
}

func TestTrimmedTraceJSONRoundTrip(t *testing.T) {
	tr := trimTestTrace(t, 20)
	tr.Trim(5)
	raw, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Base != 5 || back.Len() != 15 {
		t.Fatalf("round trip: base=%d len=%d", back.Base, back.Len())
	}
	// A tampered cycle fails validation against Base.
	back.States[0].Cycle = 99
	raw2, _ := json.Marshal(&back)
	if err := new(Trace).UnmarshalJSON(raw2); err == nil {
		t.Fatal("tampered trimmed trace decoded")
	}
}
