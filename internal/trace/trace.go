// Package trace records system execution as the formal model of Strunk,
// Knight and Aiello (DSN 2005) sees it — a sys_trace mapping each cycle to a
// system state — and verifies the four reconfiguration properties of the
// paper's Table 2 (SP1-SP4) over recorded traces.
//
// In the paper the properties are proved once over the abstract PVS model;
// any instantiation discharging the generated proof obligations then
// inherits them. This reproduction takes the runtime-verification route to
// the same predicates: every execution yields a Trace, and the checkers in
// this package evaluate SP1-SP4 exactly as stated in the paper's formal
// properties. Property-based tests drive randomized campaigns through the
// checkers, and seeded-violation tests show the checkers are not vacuous.
package trace

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/spec"
)

// ReconfStatus is reconf_st in the paper's model: the per-application
// reconfiguration status recorded each cycle.
type ReconfStatus int

// Reconfiguration statuses. StatusNormal means operation under the current
// functional specification; everything else is "not normal" for the purposes
// of SP1.
const (
	// StatusNormal is ordinary operation.
	StatusNormal ReconfStatus = iota + 1
	// StatusInterrupted marks the application whose failure (or whose
	// monitored environment change) triggered the reconfiguration, in the
	// trigger cycle.
	StatusInterrupted
	// StatusHalting covers cycles spent establishing the postcondition.
	StatusHalting
	// StatusHalted is the quiescent state after the postcondition is
	// established.
	StatusHalted
	// StatusPreparing covers cycles spent establishing the transition
	// condition for the target specification.
	StatusPreparing
	// StatusPrepared is the state after the transition condition holds.
	StatusPrepared
	// StatusInitializing covers cycles spent establishing the target
	// precondition.
	StatusInitializing
)

var statusNames = map[ReconfStatus]string{
	StatusNormal:       "normal",
	StatusInterrupted:  "interrupted",
	StatusHalting:      "halting",
	StatusHalted:       "halted",
	StatusPreparing:    "preparing",
	StatusPrepared:     "prepared",
	StatusInitializing: "initializing",
}

// String returns the status name.
func (s ReconfStatus) String() string {
	if n, ok := statusNames[s]; ok {
		return n
	}
	return fmt.Sprintf("status(%d)", int(s))
}

// Normal reports whether the status is StatusNormal.
func (s ReconfStatus) Normal() bool { return s == StatusNormal }

// MarshalJSON encodes the status by name.
func (s ReconfStatus) MarshalJSON() ([]byte, error) {
	return json.Marshal(s.String())
}

// UnmarshalJSON decodes a status from its name.
func (s *ReconfStatus) UnmarshalJSON(b []byte) error {
	var name string
	if err := json.Unmarshal(b, &name); err != nil {
		return err
	}
	for st, n := range statusNames {
		if n == name {
			*s = st
			return nil
		}
	}
	return fmt.Errorf("trace: unknown reconfiguration status %q", name)
}

// AppState is one application's recorded state in one cycle.
type AppState struct {
	// Status is the application's reconfiguration status.
	Status ReconfStatus `json:"status"`
	// Spec is the functional specification the application is assigned
	// (its target during reconfiguration).
	Spec spec.SpecID `json:"spec"`
	// PreOK reports whether the application's precondition for Spec held
	// when the application last (re)initialized. It is the per-app input
	// to SP4.
	PreOK bool `json:"pre_ok"`
}

// SysState is tr(c): the full system state for one cycle.
type SysState struct {
	// Cycle is the cycle (frame) number.
	Cycle int64 `json:"cycle"`
	// Config is svclvl: the system configuration in effect.
	Config spec.ConfigID `json:"config"`
	// Env is the effective environment state during the cycle.
	Env spec.EnvState `json:"env"`
	// Apps maps every application (real and virtual) to its state.
	Apps map[spec.AppID]AppState `json:"apps"`
}

// allNormal reports whether every application is in StatusNormal.
func (s *SysState) allNormal() bool {
	for _, a := range s.Apps {
		if !a.Status.Normal() {
			return false
		}
	}
	return true
}

// anyInterrupted reports whether some application is StatusInterrupted.
func (s *SysState) anyInterrupted() bool {
	for _, a := range s.Apps {
		if a.Status == StatusInterrupted {
			return true
		}
	}
	return false
}

// Trace is sys_trace: the per-cycle state sequence of one execution.
//
// A trace may be *trimmed*: long-running systems with a retention horizon
// drop their oldest states and record the offset in Base, so States[i]
// holds the state of cycle Base+i. An untrimmed trace has Base 0 and is
// bitwise what it always was. Property checks and reconfiguration
// extraction operate over the retained window; cycle numbers in results
// stay absolute.
type Trace struct {
	// System names the system that produced the trace.
	System string `json:"system"`
	// FrameLen is cycle_time.
	FrameLen time.Duration `json:"frame_len_ns"`
	// Base is the cycle number of States[0]; 0 for an untrimmed trace.
	Base int64 `json:"base,omitempty"`
	// States holds one entry per cycle, in cycle order starting at Base.
	States []SysState `json:"states"`
}

// Append adds the state for the next cycle. It returns an error if the
// cycle number is not contiguous with the trace.
func (t *Trace) Append(s SysState) error {
	if want := t.Base + int64(len(t.States)); s.Cycle != want {
		return fmt.Errorf("trace: appending cycle %d, want %d", s.Cycle, want)
	}
	t.States = append(t.States, s)
	return nil
}

// At returns the state at the given cycle. Cycles before the retention
// horizon of a trimmed trace report !ok, like cycles past the end.
func (t *Trace) At(cycle int64) (SysState, bool) {
	i := cycle - t.Base
	if i < 0 || i >= int64(len(t.States)) {
		return SysState{}, false
	}
	return t.States[i], true
}

// Len returns the number of retained cycles. For an untrimmed trace this is
// the number of cycles executed; End gives the absolute cycle bound.
func (t *Trace) Len() int64 { return int64(len(t.States)) }

// End returns the exclusive upper cycle bound: the next cycle Append
// expects. For an untrimmed trace End == Len.
func (t *Trace) End() int64 { return t.Base + int64(len(t.States)) }

// Trim drops every state before the given cycle and advances Base. States
// are copied into a fresh slice so the dropped prefix is actually released;
// callers amortize by trimming in chunks. Trimming past the end clears the
// trace (Base becomes End). Trimming at or below Base is a no-op.
func (t *Trace) Trim(before int64) {
	k := before - t.Base
	if k <= 0 {
		return
	}
	if k > int64(len(t.States)) {
		k = int64(len(t.States))
	}
	//lint:allow allocfree amortized retention trim: called once per retention window (not per frame), and the copy is what releases the dropped prefix
	kept := make([]SysState, len(t.States)-int(k))
	copy(kept, t.States[k:])
	t.States = kept
	t.Base += k
}

// AppIDs returns every application identifier appearing in the trace,
// sorted.
func (t *Trace) AppIDs() []spec.AppID {
	set := make(map[spec.AppID]bool)
	for _, s := range t.States {
		for id := range s.Apps {
			set[id] = true
		}
	}
	ids := make([]spec.AppID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Reconfiguration is one completed reconfiguration found in a trace: the
// record type of the paper's formal model, [# start_c, end_c #], augmented
// with the source and target configurations for reporting.
type Reconfiguration struct {
	// StartC is the cycle in which the reconfiguration begins: the first
	// cycle in which any application is no longer operating normally.
	StartC int64 `json:"start_c"`
	// EndC is the cycle in which the reconfiguration ends: the first
	// subsequent cycle in which every application operates normally
	// again.
	EndC int64 `json:"end_c"`
	// From is svclvl at StartC.
	From spec.ConfigID `json:"from"`
	// To is svclvl at EndC.
	To spec.ConfigID `json:"to"`
}

// Frames returns the inclusive window length in cycles,
// end_c - start_c + 1.
func (r Reconfiguration) Frames() int64 { return r.EndC - r.StartC + 1 }

// Reconfigs is get_reconfigs: it extracts every completed reconfiguration
// from the trace. A trailing window still open when the trace ends is not
// returned here; see OpenReconfig.
func (t *Trace) Reconfigs() []Reconfiguration {
	var out []Reconfiguration
	n := int64(len(t.States))
	var c int64
	for c < n {
		if t.States[c].allNormal() {
			c++
			continue
		}
		start := c
		for c < n && !t.States[c].allNormal() {
			c++
		}
		if c == n {
			break // open window at end of trace
		}
		out = append(out, Reconfiguration{
			StartC: t.Base + start,
			EndC:   t.Base + c,
			From:   t.States[start].Config,
			To:     t.States[c].Config,
		})
		c++
	}
	return out
}

// OpenReconfig returns the reconfiguration window still in progress when the
// trace ends, if any. EndC is the last recorded cycle and To is the
// tentative target configuration at that cycle.
func (t *Trace) OpenReconfig() (Reconfiguration, bool) {
	n := int64(len(t.States))
	if n == 0 || t.States[n-1].allNormal() {
		return Reconfiguration{}, false
	}
	start := n - 1
	for start > 0 && !t.States[start-1].allNormal() {
		start--
	}
	return Reconfiguration{
		StartC: t.Base + start,
		EndC:   t.Base + n - 1,
		From:   t.States[start].Config,
		To:     t.States[n-1].Config,
	}, true
}

// RestrictionFrames returns the total number of cycles in which system
// function was restricted (some application not operating normally). It is
// the quantity bounded by the restriction-time analysis of section 5.3.
func (t *Trace) RestrictionFrames() int64 {
	var total int64
	for _, s := range t.States {
		if !s.allNormal() {
			total++
		}
	}
	return total
}

// MaxRestrictionRun returns the length in cycles of the longest contiguous
// restriction window, including a trailing open window.
func (t *Trace) MaxRestrictionRun() int64 {
	var maxRun, run int64
	for _, s := range t.States {
		if s.allNormal() {
			run = 0
			continue
		}
		run++
		if run > maxRun {
			maxRun = run
		}
	}
	return maxRun
}

// MarshalJSON writes the trace in its JSON form.
func (t *Trace) MarshalJSON() ([]byte, error) {
	type alias Trace
	return json.Marshal((*alias)(t))
}

// UnmarshalJSON reads a trace written by MarshalJSON and validates cycle
// contiguity.
func (t *Trace) UnmarshalJSON(b []byte) error {
	type alias Trace
	if err := json.Unmarshal(b, (*alias)(t)); err != nil {
		return fmt.Errorf("trace: decoding: %w", err)
	}
	if t.Base < 0 {
		return fmt.Errorf("trace: negative base %d", t.Base)
	}
	for i, s := range t.States {
		if s.Cycle != t.Base+int64(i) {
			return fmt.Errorf("trace: state %d has cycle %d, want %d", i, s.Cycle, t.Base+int64(i))
		}
	}
	return nil
}
