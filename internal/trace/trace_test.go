package trace

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/spec"
)

// twoAppSpec returns the minimal specification the checker tests evaluate
// against: two configurations, one environment-driven transition each way.
func twoAppSpec() *spec.ReconfigSpec {
	return &spec.ReconfigSpec{
		Name: "trace-test",
		Apps: []spec.App{
			{ID: "a", Specs: []spec.Specification{
				{ID: "full", HaltFrames: 1, PrepareFrames: 1, InitFrames: 1},
				{ID: "basic", HaltFrames: 1, PrepareFrames: 1, InitFrames: 1},
			}},
			{ID: "b", Specs: []spec.Specification{
				{ID: "full", HaltFrames: 1, PrepareFrames: 1, InitFrames: 1},
			}},
		},
		Configs: []spec.Configuration{
			{ID: "full",
				Assignment: map[spec.AppID]spec.SpecID{"a": "full", "b": "full"},
				Placement:  map[spec.AppID]spec.ProcID{"a": "p1", "b": "p1"}},
			{ID: "degraded", Safe: true,
				Assignment: map[spec.AppID]spec.SpecID{"a": "basic", "b": spec.SpecOff},
				Placement:  map[spec.AppID]spec.ProcID{"a": "p1"}},
		},
		Transitions: []spec.Transition{
			{From: "full", To: "degraded", MaxFrames: 4},
			{From: "degraded", To: "full", MaxFrames: 4},
		},
		Choice: spec.ChoiceTable{
			"full":     {"env-ok": "full", "env-low": "degraded"},
			"degraded": {"env-ok": "full", "env-low": "degraded"},
		},
		Envs:        []spec.EnvState{"env-ok", "env-low"},
		StartConfig: "full",
		StartEnv:    "env-ok",
		Platform:    spec.Platform{Procs: []spec.Proc{{ID: "p1", Capacity: spec.Resources{CPU: 8}}}},
		FrameLen:    20 * time.Millisecond,
		Retarget:    spec.RetargetBuffer,
	}
}

// state builds a SysState for apps "a" and "b".
func state(cycle int64, cfg spec.ConfigID, env spec.EnvState, aSt, bSt ReconfStatus, preOK bool) SysState {
	return SysState{
		Cycle:  cycle,
		Config: cfg,
		Env:    env,
		Apps: map[spec.AppID]AppState{
			"a": {Status: aSt, Spec: "full", PreOK: preOK},
			"b": {Status: bSt, Spec: "full", PreOK: preOK},
		},
	}
}

// cleanReconfigTrace builds a trace with one well-formed reconfiguration:
// frames 0-1 normal, frame 2 trigger (a interrupted), frames 3-4 protocol,
// frame 5 normal under the new configuration. Window = [2,5] = 4 frames.
func cleanReconfigTrace(t *testing.T) *Trace {
	t.Helper()
	tr := &Trace{System: "test", FrameLen: 20 * time.Millisecond}
	states := []SysState{
		state(0, "full", "env-ok", StatusNormal, StatusNormal, true),
		state(1, "full", "env-ok", StatusNormal, StatusNormal, true),
		state(2, "full", "env-low", StatusInterrupted, StatusHalting, true),
		state(3, "full", "env-low", StatusHalted, StatusHalted, true),
		state(4, "full", "env-low", StatusPreparing, StatusPrepared, true),
		state(5, "degraded", "env-low", StatusNormal, StatusNormal, true),
		state(6, "degraded", "env-low", StatusNormal, StatusNormal, true),
	}
	for _, s := range states {
		if err := tr.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	return tr
}

func TestAppendContiguity(t *testing.T) {
	tr := &Trace{}
	if err := tr.Append(state(1, "full", "env-ok", StatusNormal, StatusNormal, true)); err == nil {
		t.Fatal("non-contiguous append accepted")
	}
	if err := tr.Append(state(0, "full", "env-ok", StatusNormal, StatusNormal, true)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(state(0, "full", "env-ok", StatusNormal, StatusNormal, true)); err == nil {
		t.Fatal("duplicate cycle accepted")
	}
	if tr.Len() != 1 {
		t.Errorf("Len = %d", tr.Len())
	}
}

func TestAtBounds(t *testing.T) {
	tr := cleanReconfigTrace(t)
	if _, ok := tr.At(-1); ok {
		t.Error("At(-1) ok")
	}
	if _, ok := tr.At(tr.Len()); ok {
		t.Error("At(len) ok")
	}
	if s, ok := tr.At(0); !ok || s.Cycle != 0 {
		t.Error("At(0) wrong")
	}
}

func TestReconfigsExtraction(t *testing.T) {
	tr := cleanReconfigTrace(t)
	rcs := tr.Reconfigs()
	if len(rcs) != 1 {
		t.Fatalf("found %d reconfigurations, want 1", len(rcs))
	}
	r := rcs[0]
	if r.StartC != 2 || r.EndC != 5 || r.From != "full" || r.To != "degraded" {
		t.Errorf("reconfiguration = %+v", r)
	}
	if r.Frames() != 4 {
		t.Errorf("Frames = %d, want 4", r.Frames())
	}
	if _, open := tr.OpenReconfig(); open {
		t.Error("unexpected open reconfiguration")
	}
}

func TestOpenReconfigAtTraceEnd(t *testing.T) {
	tr := cleanReconfigTrace(t)
	// Append an unfinished second window.
	if err := tr.Append(state(7, "degraded", "env-ok", StatusInterrupted, StatusHalting, true)); err != nil {
		t.Fatal(err)
	}
	if err := tr.Append(state(8, "degraded", "env-ok", StatusHalted, StatusHalted, true)); err != nil {
		t.Fatal(err)
	}
	if rcs := tr.Reconfigs(); len(rcs) != 1 {
		t.Fatalf("complete reconfigurations = %d, want 1", len(rcs))
	}
	open, ok := tr.OpenReconfig()
	if !ok {
		t.Fatal("open reconfiguration not found")
	}
	if open.StartC != 7 || open.EndC != 8 || open.From != "degraded" {
		t.Errorf("open = %+v", open)
	}
}

func TestRestrictionMetrics(t *testing.T) {
	tr := cleanReconfigTrace(t)
	if got := tr.RestrictionFrames(); got != 3 {
		t.Errorf("RestrictionFrames = %d, want 3 (cycles 2-4)", got)
	}
	if got := tr.MaxRestrictionRun(); got != 3 {
		t.Errorf("MaxRestrictionRun = %d, want 3", got)
	}
}

func TestAppIDs(t *testing.T) {
	tr := cleanReconfigTrace(t)
	ids := tr.AppIDs()
	if len(ids) != 2 || ids[0] != "a" || ids[1] != "b" {
		t.Errorf("AppIDs = %v", ids)
	}
}

func TestCleanTraceSatisfiesAllProperties(t *testing.T) {
	tr := cleanReconfigTrace(t)
	rs := twoAppSpec()
	if vs := CheckAll(tr, rs); len(vs) != 0 {
		t.Fatalf("violations on clean trace: %v", vs)
	}
}

func TestSP1Violations(t *testing.T) {
	t.Run("no interrupted app at start", func(t *testing.T) {
		tr := cleanReconfigTrace(t)
		st := tr.States[2]
		st.Apps["a"] = AppState{Status: StatusHalting, Spec: "full", PreOK: true}
		vs := CheckSP1(tr)
		if len(vs) != 1 || vs[0].Property != "SP1" {
			t.Fatalf("violations = %v", vs)
		}
	})
	t.Run("app normal strictly inside window", func(t *testing.T) {
		tr := cleanReconfigTrace(t)
		st := tr.States[3]
		st.Apps["b"] = AppState{Status: StatusNormal, Spec: "full", PreOK: true}
		vs := CheckSP1(tr)
		if len(vs) == 0 {
			t.Fatal("premature-resume not detected")
		}
	})
	// A trace whose window begins at cycle 0 cannot check start_c - 1;
	// the remaining conjuncts still apply.
	t.Run("window at trace start", func(t *testing.T) {
		tr := &Trace{System: "test", FrameLen: time.Millisecond}
		for i, s := range []SysState{
			state(0, "full", "env-low", StatusInterrupted, StatusHalting, true),
			state(1, "full", "env-low", StatusHalted, StatusHalted, true),
			state(2, "degraded", "env-low", StatusNormal, StatusNormal, true),
		} {
			s.Cycle = int64(i)
			if err := tr.Append(s); err != nil {
				t.Fatal(err)
			}
		}
		if vs := CheckSP1(tr); len(vs) != 0 {
			t.Fatalf("violations = %v", vs)
		}
	})
}

func TestSP2Violation(t *testing.T) {
	tr := cleanReconfigTrace(t)
	rs := twoAppSpec()
	// Rewrite the window's environment to env-ok: choose(full, env-ok) =
	// full, so reaching degraded is not justified by any cycle.
	for c := 2; c <= 5; c++ {
		tr.States[c].Env = "env-ok"
	}
	vs := CheckSP2(tr, rs)
	if len(vs) != 1 || vs[0].Property != "SP2" {
		t.Fatalf("violations = %v", vs)
	}
	// SP2 needs only SOME cycle in the window to justify the choice.
	tr.States[4].Env = "env-low"
	if vs := CheckSP2(tr, rs); len(vs) != 0 {
		t.Fatalf("violations after restoring one cycle = %v", vs)
	}
}

func TestSP3Violations(t *testing.T) {
	t.Run("window exceeds bound", func(t *testing.T) {
		tr := cleanReconfigTrace(t)
		rs := twoAppSpec()
		rs.Transitions[0].MaxFrames = 3 // window is 4
		vs := CheckSP3(tr, rs)
		if len(vs) != 1 || vs[0].Property != "SP3" {
			t.Fatalf("violations = %v", vs)
		}
	})
	t.Run("undeclared transition", func(t *testing.T) {
		tr := cleanReconfigTrace(t)
		rs := twoAppSpec()
		rs.Transitions = rs.Transitions[1:] // drop full->degraded
		vs := CheckSP3(tr, rs)
		if len(vs) != 1 || vs[0].Property != "SP3" {
			t.Fatalf("violations = %v", vs)
		}
	})
}

func TestSP4Violation(t *testing.T) {
	tr := cleanReconfigTrace(t)
	st := tr.States[5]
	st.Apps["a"] = AppState{Status: StatusNormal, Spec: "basic", PreOK: false}
	vs := CheckSP4(tr)
	if len(vs) != 1 || vs[0].Property != "SP4" {
		t.Fatalf("violations = %v", vs)
	}
}

func TestCheckAllAggregates(t *testing.T) {
	tr := cleanReconfigTrace(t)
	rs := twoAppSpec()
	// Seed an SP3 and an SP4 violation together.
	rs.Transitions[0].MaxFrames = 2
	st := tr.States[5]
	st.Apps["b"] = AppState{Status: StatusNormal, Spec: "full", PreOK: false}
	vs := CheckAll(tr, rs)
	props := map[string]int{}
	for _, v := range vs {
		props[v.Property]++
	}
	if props["SP3"] != 1 || props["SP4"] != 1 {
		t.Fatalf("violations = %v", vs)
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{
		Property: "SP3",
		Reconfig: Reconfiguration{StartC: 2, EndC: 5, From: "full", To: "degraded"},
		Cycle:    5,
		Detail:   "too long",
	}
	want := "SP3 violated in reconfiguration [2,5] full->degraded (cycle 5): too long"
	if got := v.String(); got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestTraceJSONRoundTrip(t *testing.T) {
	tr := cleanReconfigTrace(t)
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Trace
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != tr.Len() || back.System != tr.System || back.FrameLen != tr.FrameLen {
		t.Fatalf("round trip lost shape: %+v", back)
	}
	rcs := back.Reconfigs()
	if len(rcs) != 1 || rcs[0] != tr.Reconfigs()[0] {
		t.Errorf("round trip lost reconfigurations: %v", rcs)
	}
	if vs := CheckAll(&back, twoAppSpec()); len(vs) != 0 {
		t.Errorf("round-tripped trace has violations: %v", vs)
	}
}

func TestTraceJSONRejectsBadCycles(t *testing.T) {
	bad := `{"system":"x","frame_len_ns":1,"states":[{"cycle":5,"config":"c","env":"e","apps":{}}]}`
	var tr Trace
	if err := json.Unmarshal([]byte(bad), &tr); err == nil {
		t.Fatal("non-contiguous trace decoded without error")
	}
}

func TestStatusJSON(t *testing.T) {
	for st, name := range statusNames {
		data, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != `"`+name+`"` {
			t.Errorf("marshal %v = %s", st, data)
		}
		var back ReconfStatus
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatal(err)
		}
		if back != st {
			t.Errorf("round trip %v -> %v", st, back)
		}
	}
	var s ReconfStatus
	if err := json.Unmarshal([]byte(`"bogus"`), &s); err == nil {
		t.Error("bogus status decoded")
	}
	if got := ReconfStatus(99).String(); got != "status(99)" {
		t.Errorf("String = %q", got)
	}
}

func TestMultipleReconfigurations(t *testing.T) {
	tr := &Trace{System: "multi", FrameLen: time.Millisecond}
	seq := []SysState{
		state(0, "full", "env-ok", StatusNormal, StatusNormal, true),
		state(1, "full", "env-low", StatusInterrupted, StatusHalting, true),
		state(2, "full", "env-low", StatusPreparing, StatusPreparing, true),
		state(3, "degraded", "env-low", StatusNormal, StatusNormal, true),
		state(4, "degraded", "env-ok", StatusInterrupted, StatusHalting, true),
		state(5, "degraded", "env-ok", StatusPreparing, StatusPreparing, true),
		state(6, "full", "env-ok", StatusNormal, StatusNormal, true),
	}
	for i, s := range seq {
		s.Cycle = int64(i)
		if err := tr.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	rcs := tr.Reconfigs()
	if len(rcs) != 2 {
		t.Fatalf("reconfigurations = %d, want 2", len(rcs))
	}
	if rcs[0].From != "full" || rcs[0].To != "degraded" || rcs[1].From != "degraded" || rcs[1].To != "full" {
		t.Errorf("reconfigs = %+v", rcs)
	}
	if vs := CheckAll(tr, twoAppSpec()); len(vs) != 0 {
		t.Errorf("violations = %v", vs)
	}
}

// TestReconfigsPartitionProperty: for random status sequences, the windows
// get_reconfigs finds (plus any open window) exactly cover the non-normal
// cycles, never overlap, and are ordered.
func TestReconfigsPartitionProperty(t *testing.T) {
	prop := func(pattern []bool) bool {
		tr := &Trace{System: "prop", FrameLen: time.Millisecond}
		for c, busy := range pattern {
			st := StatusNormal
			if busy {
				st = StatusHalting
			}
			err := tr.Append(SysState{
				Cycle: int64(c), Config: "full", Env: "e",
				Apps: map[spec.AppID]AppState{"a": {Status: st, Spec: "s", PreOK: true}},
			})
			if err != nil {
				return false
			}
		}
		windows := tr.Reconfigs()
		if open, ok := tr.OpenReconfig(); ok {
			windows = append(windows, open)
		}
		// Ordered and non-overlapping.
		for i := 1; i < len(windows); i++ {
			if windows[i].StartC <= windows[i-1].EndC {
				return false
			}
		}
		// Every busy cycle is inside a window; every window interior
		// (excluding the closing all-normal cycle) is busy.
		covered := make(map[int64]bool)
		for _, w := range windows {
			for c := w.StartC; c <= w.EndC; c++ {
				covered[c] = true
			}
		}
		for c, busy := range pattern {
			if busy && !covered[int64(c)] {
				return false
			}
		}
		// Restriction frames equal the busy count.
		busyCount := int64(0)
		for _, b := range pattern {
			if b {
				busyCount++
			}
		}
		return tr.RestrictionFrames() == busyCount
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestTraceJSONRoundTripProperty: any structurally valid trace survives the
// JSON round trip with identical reconfiguration structure.
func TestTraceJSONRoundTripProperty(t *testing.T) {
	statuses := []ReconfStatus{
		StatusNormal, StatusInterrupted, StatusHalting, StatusHalted,
		StatusPreparing, StatusPrepared, StatusInitializing,
	}
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trace{System: "rt", FrameLen: time.Duration(1+rng.Intn(100)) * time.Millisecond}
		n := 1 + rng.Intn(40)
		for c := 0; c < n; c++ {
			apps := map[spec.AppID]AppState{}
			for a := 0; a < 1+rng.Intn(3); a++ {
				apps[spec.AppID(fmt.Sprintf("a%d", a))] = AppState{
					Status: statuses[rng.Intn(len(statuses))],
					Spec:   spec.SpecID(fmt.Sprintf("s%d", rng.Intn(3))),
					PreOK:  rng.Intn(2) == 0,
				}
			}
			if err := tr.Append(SysState{Cycle: int64(c), Config: "c", Env: "e", Apps: apps}); err != nil {
				return false
			}
		}
		data, err := json.Marshal(tr)
		if err != nil {
			return false
		}
		var back Trace
		if err := json.Unmarshal(data, &back); err != nil {
			return false
		}
		if back.Len() != tr.Len() || len(back.Reconfigs()) != len(tr.Reconfigs()) {
			return false
		}
		return back.RestrictionFrames() == tr.RestrictionFrames()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSP1MultipleInterruptedApps(t *testing.T) {
	// Two applications interrupted in the same trigger frame (e.g. a
	// processor hosting both): SP1's existential conjunct is satisfied.
	tr := &Trace{System: "multi-int", FrameLen: time.Millisecond}
	seq := []SysState{
		state(0, "full", "env-ok", StatusNormal, StatusNormal, true),
		state(1, "full", "env-low", StatusInterrupted, StatusInterrupted, true),
		state(2, "full", "env-low", StatusHalted, StatusHalted, true),
		state(3, "degraded", "env-low", StatusNormal, StatusNormal, true),
	}
	for i, s := range seq {
		s.Cycle = int64(i)
		if err := tr.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if vs := CheckSP1(tr); len(vs) != 0 {
		t.Fatalf("violations = %v", vs)
	}
}

func TestSP2EnvOnlyAtStartCycle(t *testing.T) {
	// The justifying environment appears only in the trigger cycle and
	// flips back immediately: SP2's existential still holds.
	tr := cleanReconfigTrace(t)
	for c := 3; c <= 5; c++ {
		tr.States[c].Env = "env-ok"
	}
	// Cycle 2 (start_c) retains env-low.
	if vs := CheckSP2(tr, twoAppSpec()); len(vs) != 0 {
		t.Fatalf("violations = %v", vs)
	}
}

func TestMinimalTwoCycleWindow(t *testing.T) {
	// The shortest possible window: interrupted at f, all normal at f+1.
	tr := &Trace{System: "min", FrameLen: time.Millisecond}
	seq := []SysState{
		state(0, "full", "env-ok", StatusNormal, StatusNormal, true),
		state(1, "full", "env-low", StatusInterrupted, StatusHalting, true),
		state(2, "degraded", "env-low", StatusNormal, StatusNormal, true),
	}
	for i, s := range seq {
		s.Cycle = int64(i)
		if err := tr.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	rcs := tr.Reconfigs()
	if len(rcs) != 1 || rcs[0].Frames() != 2 {
		t.Fatalf("reconfigs = %v", rcs)
	}
	if vs := CheckAll(tr, twoAppSpec()); len(vs) != 0 {
		t.Fatalf("violations = %v", vs)
	}
}

func TestOpenWindowWithinBoundNotFlagged(t *testing.T) {
	// An open window that has not yet exceeded any declared bound is not
	// an SP3 violation — the reconfiguration may still complete in time.
	tr := &Trace{System: "open-ok", FrameLen: time.Millisecond}
	seq := []SysState{
		state(0, "full", "env-ok", StatusNormal, StatusNormal, true),
		state(1, "full", "env-low", StatusInterrupted, StatusHalting, true),
		state(2, "full", "env-low", StatusHalted, StatusHalted, true),
	}
	for i, s := range seq {
		s.Cycle = int64(i)
		if err := tr.Append(s); err != nil {
			t.Fatal(err)
		}
	}
	if vs := CheckSP3(tr, twoAppSpec()); len(vs) != 0 {
		t.Fatalf("open window within bound flagged: %v", vs)
	}
}
