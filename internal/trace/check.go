package trace

import (
	"fmt"

	"repro/internal/spec"
)

// Violation is one failed property instance.
type Violation struct {
	// Property is "SP1" through "SP4".
	Property string `json:"property"`
	// Reconfig is the reconfiguration the property was evaluated over.
	Reconfig Reconfiguration `json:"reconfig"`
	// Cycle is the cycle at which the violation manifests, when one is
	// identifiable; -1 otherwise.
	Cycle int64 `json:"cycle"`
	// Detail is a human-readable explanation.
	Detail string `json:"detail"`
}

// String renders the violation for reports.
func (v Violation) String() string {
	return fmt.Sprintf("%s violated in reconfiguration [%d,%d] %s->%s (cycle %d): %s",
		v.Property, v.Reconfig.StartC, v.Reconfig.EndC, v.Reconfig.From, v.Reconfig.To, v.Cycle, v.Detail)
}

// CheckSP1 verifies, for every reconfiguration R in the trace, the paper's
// SP1: "R begins at the time any application in the system is no longer
// operating under Ci and ends when all applications are operating under
// Cj". Formally:
//
//   - some application is interrupted at start_c,
//   - every application is normal at start_c - 1,
//   - every application is normal at end_c, and
//   - at every cycle strictly between start_c and end_c, no application is
//     normal.
func CheckSP1(t *Trace) []Violation {
	var out []Violation
	for _, r := range t.Reconfigs() {
		start, _ := t.At(r.StartC)
		end, _ := t.At(r.EndC)
		if !start.anyInterrupted() {
			out = append(out, Violation{
				Property: "SP1", Reconfig: r, Cycle: r.StartC,
				Detail: "no application is interrupted at start_c",
			})
		}
		if prev, ok := t.At(r.StartC - 1); ok && !prev.allNormal() {
			out = append(out, Violation{
				Property: "SP1", Reconfig: r, Cycle: r.StartC - 1,
				Detail: "some application is not normal at start_c - 1",
			})
		}
		if !end.allNormal() {
			out = append(out, Violation{
				Property: "SP1", Reconfig: r, Cycle: r.EndC,
				Detail: "some application is not normal at end_c",
			})
		}
		for c := r.StartC + 1; c < r.EndC; c++ {
			st, _ := t.At(c)
			for id, app := range st.Apps {
				if app.Status.Normal() {
					out = append(out, Violation{
						Property: "SP1", Reconfig: r, Cycle: c,
						Detail: fmt.Sprintf("application %q is normal strictly inside the reconfiguration window", id),
					})
				}
			}
		}
	}
	return out
}

// CheckSP2 verifies the paper's SP2: the configuration reached at end_c is
// the one the choice function selects for the source configuration and the
// environment state at some time during the reconfiguration window:
//
//	EXISTS c in [start_c, end_c] :
//	    tr(end_c).svclvl = choose(tr(start_c).svclvl, env(c))
func CheckSP2(t *Trace, rs *spec.ReconfigSpec) []Violation {
	var out []Violation
	for _, r := range t.Reconfigs() {
		satisfied := false
		for c := r.StartC; c <= r.EndC && !satisfied; c++ {
			st, _ := t.At(c)
			if target, ok := rs.Choice.Choose(r.From, st.Env); ok && target == r.To {
				satisfied = true
			}
		}
		if !satisfied {
			out = append(out, Violation{
				Property: "SP2", Reconfig: r, Cycle: -1,
				Detail: fmt.Sprintf("no cycle in [%d,%d] has choose(%s, env) = %s",
					r.StartC, r.EndC, r.From, r.To),
			})
		}
	}
	return out
}

// CheckSP3 verifies the paper's SP3: the reconfiguration takes at most
// T(Ci, Cj) time units:
//
//	(end_c - start_c + 1) * cycle_time <= T(tr(start_c).svclvl, tr(end_c).svclvl)
//
// with T expressed in frames by the specification's transition table. A
// reconfiguration along a pair with no declared transition bound is itself a
// violation (the transition was not statically permitted).
func CheckSP3(t *Trace, rs *spec.ReconfigSpec) []Violation {
	var out []Violation
	for _, r := range t.Reconfigs() {
		bound, ok := rs.T(r.From, r.To)
		if !ok {
			out = append(out, Violation{
				Property: "SP3", Reconfig: r, Cycle: -1,
				Detail: fmt.Sprintf("no declared transition bound T(%s, %s)", r.From, r.To),
			})
			continue
		}
		if frames := r.Frames(); frames > int64(bound) {
			out = append(out, Violation{
				Property: "SP3", Reconfig: r, Cycle: r.EndC,
				Detail: fmt.Sprintf("window is %d frames, bound T(%s, %s) = %d",
					frames, r.From, r.To, bound),
			})
		}
	}
	// A window still open at the end of the trace has no final target, but
	// once it outlives every bound declared from its source configuration
	// it can no longer satisfy SP3 whatever it ends in — the signature of
	// a stalled reconfiguration (for example a dead SCRAM).
	if open, ok := t.OpenReconfig(); ok {
		worst := 0
		for _, tr := range rs.Transitions {
			if tr.From == open.From && tr.MaxFrames > worst {
				worst = tr.MaxFrames
			}
		}
		if open.Frames() > int64(worst) {
			out = append(out, Violation{
				Property: "SP3", Reconfig: open, Cycle: open.EndC,
				Detail: fmt.Sprintf("open window is already %d frames, exceeding every declared bound from %s (max %d)",
					open.Frames(), open.From, worst),
			})
		}
	}
	return out
}

// CheckSP4 verifies the paper's SP4: the precondition for the target
// configuration holds at the time the reconfiguration ends — every
// application reports that the precondition of its assigned specification
// held when it (re)initialized.
func CheckSP4(t *Trace) []Violation {
	var out []Violation
	for _, r := range t.Reconfigs() {
		end, _ := t.At(r.EndC)
		for id, app := range end.Apps {
			if !app.PreOK {
				out = append(out, Violation{
					Property: "SP4", Reconfig: r, Cycle: r.EndC,
					Detail: fmt.Sprintf("application %q entered specification %q without its precondition", id, app.Spec),
				})
			}
		}
	}
	return out
}

// CheckAll runs all four property checkers and returns the concatenated
// violations, SP1 first.
func CheckAll(t *Trace, rs *spec.ReconfigSpec) []Violation {
	var out []Violation
	out = append(out, CheckSP1(t)...)
	out = append(out, CheckSP2(t, rs)...)
	out = append(out, CheckSP3(t, rs)...)
	out = append(out, CheckSP4(t)...)
	return out
}
