// Quickstart: the smallest complete assured-reconfiguration system.
//
// Two applications (a controller and a logger) run on two fail-stop
// processors in a "normal" configuration. When the scripted environment
// degrades at frame 50, the SCRAM drives the Table 1 protocol — halt,
// prepare, initialize — into a "fallback" configuration where the logger is
// off and the controller runs a basic specification. The run finishes by
// checking the four formal reconfiguration properties (SP1-SP4) over the
// recorded trace.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/envmon"
	"repro/internal/spec"
)

func buildSpec() *spec.ReconfigSpec {
	onePhase := func(id spec.SpecID, cpu int) spec.Specification {
		return spec.Specification{
			ID:         id,
			Resources:  spec.Resources{CPU: cpu, MemoryKB: 64 * cpu, PowerMW: 100 * cpu},
			HaltFrames: 1, PrepareFrames: 1, InitFrames: 1,
		}
	}
	return &spec.ReconfigSpec{
		Name: "quickstart",
		Apps: []spec.App{
			{ID: "controller", Specs: []spec.Specification{onePhase("full", 2), onePhase("basic", 1)}},
			{ID: "logger", Specs: []spec.Specification{onePhase("full", 1)}},
			{ID: "env-monitor", Virtual: true, Specs: []spec.Specification{onePhase("monitor", 0)}},
		},
		Configs: []spec.Configuration{
			{
				ID:         "normal",
				Assignment: map[spec.AppID]spec.SpecID{"controller": "full", "logger": "full"},
				Placement:  map[spec.AppID]spec.ProcID{"controller": "p1", "logger": "p2"},
			},
			{
				ID:         "fallback",
				Safe:       true,
				Assignment: map[spec.AppID]spec.SpecID{"controller": "basic", "logger": spec.SpecOff},
				Placement:  map[spec.AppID]spec.ProcID{"controller": "p1"},
			},
		},
		Transitions: []spec.Transition{
			{From: "normal", To: "fallback", MaxFrames: 6},
			{From: "fallback", To: "normal", MaxFrames: 6},
		},
		Choice: spec.ChoiceTable{
			"normal":   {"healthy": "normal", "degraded": "fallback"},
			"fallback": {"healthy": "normal", "degraded": "fallback"},
		},
		Envs:        []spec.EnvState{"healthy", "degraded"},
		StartConfig: "normal",
		StartEnv:    "healthy",
		Platform: spec.Platform{Procs: []spec.Proc{
			{ID: "p1", Capacity: spec.Resources{CPU: 8, MemoryKB: 1024, PowerMW: 1000}},
			{ID: "p2", Capacity: spec.Resources{CPU: 8, MemoryKB: 1024, PowerMW: 1000}},
		}},
		FrameLen:    10 * time.Millisecond,
		DwellFrames: 5, // the normal<->fallback loop is a cycle: guard it
		Retarget:    spec.RetargetBuffer,
	}
}

func main() {
	rs := buildSpec()

	// BasicApp is the library's reference application: each protocol
	// phase takes exactly the frames its specification declares.
	apps := map[spec.AppID]core.App{}
	for _, decl := range rs.RealApps() {
		decl := decl
		apps[decl.ID] = core.NewBasicApp(&decl)
	}

	sys, err := core.NewSystem(core.Options{
		Spec: rs,
		Apps: apps,
		// The classifier maps raw environment factors to the abstract
		// environment states the choice table uses.
		Classifier: func(f map[envmon.Factor]string) spec.EnvState {
			return spec.EnvState(f["health"])
		},
		InitialFactors: map[envmon.Factor]string{"health": "healthy"},
		// At frame 50 the environment degrades: a failure, in the
		// paper's model, is simply an environment change.
		Script: []envmon.Event{{Frame: 50, Factor: "health", Value: "degraded"}},
	})
	if err != nil {
		log.Fatal(err) // statics obligations failed, or wiring is wrong
	}
	defer sys.Close()

	if err := sys.Run(100); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("final configuration: %s\n\n", sys.Kernel().Current())
	fmt.Println("SCRAM protocol events:")
	for _, e := range sys.Kernel().Events() {
		fmt.Printf("  %s\n", e)
	}

	fmt.Println("\nreconfigurations found in the trace:")
	for _, r := range sys.Trace().Reconfigs() {
		fmt.Printf("  [%d,%d] %s -> %s (%d frames)\n", r.StartC, r.EndC, r.From, r.To, r.Frames())
	}

	if violations := sys.CheckProperties(); len(violations) == 0 {
		fmt.Println("\nSP1-SP4: all formal reconfiguration properties hold")
	} else {
		for _, v := range violations {
			fmt.Printf("violation: %s\n", v)
		}
	}
}
