// Maskingcompare: the section 5.1 resource argument, live.
//
// A masking design (Schlichting & Schneider's original fail-stop usage)
// must carry enough processors to provide FULL service even after the
// maximum anticipated number of failures; a reconfigurable design only needs
// enough to provide the most basic SAFE service after those failures. The
// example prints the equipment table for a range of failure budgets, then
// runs both designs through the same two-failure mission: the masking
// baseline restarts on spares and keeps full service; the reconfigurable
// system — carrying two fewer processors — degrades service instead, with
// every reconfiguration verified against SP1-SP4.
//
// Run with: go run ./examples/maskingcompare
package main

import (
	"fmt"
	"log"

	"repro/internal/avionics"
	"repro/internal/envmon"
	"repro/internal/masking"
)

func main() {
	// Equipment table: the avionics platform shape (full service = 2
	// processors, basic safe service = 1).
	fmt.Println("equipment required (full service = 2 procs, safe service = 1 proc):")
	fmt.Println("  failures   masking   reconfiguration   saved")
	rows, err := masking.EquipmentSweep(2, 1, 4)
	if err != nil {
		log.Fatal(err)
	}
	for _, r := range rows {
		fmt.Printf("  %8d   %7d   %15d   %5d\n",
			r.Params.MaxFailures, r.MaskingTotal, r.ReconfigTotal, r.Saved)
	}

	// Mission comparison with a 2-failure budget over 1000 frames.
	const frames = 1000
	failures := []int64{200, 600}

	// Masking: 2 (full service) + 2 (failure budget) = 4 processors.
	st, err := masking.RunMaskedMission(4, 2, frames, failures)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmasking design (4 processors): %d/%d work units completed, "+
		"%d recoveries, %d frames lost, full service throughout\n",
		st.WorkDone, frames, st.Recoveries, st.LostFrames)

	// Reconfiguration: the avionics system rides out the same failure
	// pattern (modeled as alternator losses) with its 2 processors,
	// degrading to reduced then minimal service.
	sc, err := avionics.NewScenario(avionics.ScenarioOptions{
		Initial:     avionics.AircraftState{AltFt: 5000, AirspeedKts: 100},
		DwellFrames: 10,
		Script: []envmon.Event{
			{Frame: failures[0], Factor: avionics.FactorAlt1, Value: avionics.AltFailed},
			{Frame: failures[1], Factor: avionics.FactorAlt2, Value: avionics.AltFailed},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sc.Close()
	if err := sc.Sys.Run(frames); err != nil {
		log.Fatal(err)
	}

	tr := sc.Sys.Trace()
	perConfig := map[string]int64{}
	for _, s := range tr.States {
		perConfig[string(s.Config)]++
	}
	fmt.Printf("\nreconfigurable design (2 processors): service over %d frames:\n", frames)
	for _, cfg := range []string{"full-service", "reduced-service", "minimal-service"} {
		fmt.Printf("  %-16s %5d frames\n", cfg, perConfig[cfg])
	}
	fmt.Printf("  restricted (reconfiguring): %d frames\n", tr.RestrictionFrames())

	if violations := sc.Sys.CheckProperties(); len(violations) == 0 {
		fmt.Println("\nSP1-SP4: every degradation was an assured reconfiguration")
	} else {
		for _, v := range violations {
			fmt.Printf("violation: %s\n", v)
		}
	}
	fmt.Println("\ntradeoff: masking spends 2 extra processors to preserve full service;")
	fmt.Println("reconfiguration preserves assured safe service with no excess equipment")
}
