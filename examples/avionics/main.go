// Avionics: the paper's section 7 example — a UAV mission that climbs and
// turns on autopilot, loses both alternators in flight (degrading through
// Reduced Service into Minimal Service), regains one alternator (returning
// to Reduced Service), and verifies SP1-SP4 over the whole flight.
//
// Run with: go run ./examples/avionics
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/avionics"
	"repro/internal/envmon"
)

func main() {
	sc, err := avionics.NewScenario(avionics.ScenarioOptions{
		Initial: avionics.AircraftState{AltFt: 5000, HeadingDeg: 0, AirspeedKts: 100},
		// The mission: climb to 5300 ft while turning to heading 045.
		Targets:     avionics.Targets{AltFt: 5300, HdgDeg: 45, Climb: true, Turn: true},
		DwellFrames: 10,
		Script: []envmon.Event{
			// 10 s in: first alternator fails -> Reduced Service.
			{Frame: 500, Factor: avionics.FactorAlt1, Value: avionics.AltFailed},
			// 24 s in: second alternator fails -> Minimal Service.
			{Frame: 1200, Factor: avionics.FactorAlt2, Value: avionics.AltFailed},
			// 36 s in: one alternator repaired -> back to Reduced.
			{Frame: 1800, Factor: avionics.FactorAlt1, Value: avionics.AltOK},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sc.Close()

	fmt.Println("UAV mission: 48 s of flight at 50 Hz (2400 frames)")
	fmt.Println("frame    configuration     altitude      vs        heading  bank   autopilot")
	for i := 0; i < 24; i++ {
		if err := sc.Sys.Run(100); err != nil {
			log.Fatal(err)
		}
		st := sc.Dyn.State()
		engaged := "engaged"
		if !sc.AP.Engaged() {
			engaged = "off"
		}
		fmt.Printf("f%-6d  %-16s  %7.1f ft  %7.1f fpm  %6.1f  %5.1f  %s\n",
			sc.Sys.Frame(), sc.Sys.Kernel().Current(), st.AltFt, st.VSFpm,
			st.HeadingDeg, st.BankDeg, engaged)
	}

	fmt.Println("\nreconfigurations:")
	for _, r := range sc.Sys.Trace().Reconfigs() {
		fmt.Printf("  [%d,%d] %s -> %s (%d frames = %v)\n",
			r.StartC, r.EndC, r.From, r.To, r.Frames(),
			avionics.FrameLength*time.Duration(r.Frames()))
	}

	if violations := sc.Sys.CheckProperties(); len(violations) == 0 {
		fmt.Println("\nSP1-SP4: all formal reconfiguration properties hold over the mission")
	} else {
		for _, v := range violations {
			fmt.Printf("violation: %s\n", v)
		}
	}
}
