// Missionphases: reconfiguration without failure.
//
// Section 4 of the paper notes that a reconfiguration trigger can be "a
// change in the external environment that necessitates reconfiguration but
// involves no failure at all" — the mission-phase and operating-mode changes
// its introduction motivates (spacecraft mission phases, aircraft operating
// modes).
//
// This example models a UAV mission computer with three phase-specific
// configurations — takeoff, cruise, and landing — over three applications
// (navigation, imaging payload, landing system). The environment is the
// flight phase announced by a phase monitor; every phase change drives an
// assured reconfiguration through the same SCRAM protocol that failures
// would, with the same SP1-SP4 guarantees.
//
// Run with: go run ./examples/missionphases
package main

import (
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/envmon"
	"repro/internal/spec"
)

func buildSpec() *spec.ReconfigSpec {
	mk := func(id spec.SpecID, cpu int) spec.Specification {
		return spec.Specification{
			ID:         id,
			Resources:  spec.Resources{CPU: cpu, MemoryKB: cpu * 64, PowerMW: cpu * 100},
			HaltFrames: 1, PrepareFrames: 1, InitFrames: 1,
		}
	}
	return &spec.ReconfigSpec{
		Name: "uav-mission-phases",
		Apps: []spec.App{
			{ID: "nav", Description: "navigation",
				Specs: []spec.Specification{mk("precision", 4), mk("enroute", 2)}},
			{ID: "payload", Description: "imaging payload",
				Specs: []spec.Specification{mk("survey", 4)}},
			{ID: "lander", Description: "landing system",
				Specs: []spec.Specification{mk("approach", 4)}},
			{ID: "phase-monitor", Virtual: true,
				Specs: []spec.Specification{mk("monitor", 0)}},
		},
		Configs: []spec.Configuration{
			{
				ID:          "takeoff",
				Description: "precision navigation, payload and lander off",
				Assignment: map[spec.AppID]spec.SpecID{
					"nav": "precision", "payload": spec.SpecOff, "lander": spec.SpecOff,
				},
				Placement: map[spec.AppID]spec.ProcID{"nav": "p1"},
				Safe:      true,
			},
			{
				ID:          "cruise",
				Description: "enroute navigation, payload surveying",
				Assignment: map[spec.AppID]spec.SpecID{
					"nav": "enroute", "payload": "survey", "lander": spec.SpecOff,
				},
				Placement: map[spec.AppID]spec.ProcID{"nav": "p1", "payload": "p2"},
			},
			{
				ID:          "landing",
				Description: "precision navigation plus the landing system; payload off",
				Assignment: map[spec.AppID]spec.SpecID{
					"nav": "precision", "payload": spec.SpecOff, "lander": "approach",
				},
				Placement: map[spec.AppID]spec.ProcID{"nav": "p1", "lander": "p2"},
				Safe:      true,
			},
		},
		Transitions: []spec.Transition{
			{From: "takeoff", To: "cruise", MaxFrames: 8},
			{From: "cruise", To: "landing", MaxFrames: 8},
			{From: "landing", To: "cruise", MaxFrames: 8}, // go-around
			{From: "cruise", To: "takeoff", MaxFrames: 8},
		},
		Choice: spec.ChoiceTable{
			"takeoff": {"phase-takeoff": "takeoff", "phase-cruise": "cruise", "phase-landing": "cruise"},
			"cruise":  {"phase-takeoff": "takeoff", "phase-cruise": "cruise", "phase-landing": "landing"},
			"landing": {"phase-takeoff": "cruise", "phase-cruise": "cruise", "phase-landing": "landing"},
		},
		Envs:        []spec.EnvState{"phase-takeoff", "phase-cruise", "phase-landing"},
		StartConfig: "takeoff",
		StartEnv:    "phase-takeoff",
		Deps: []spec.Dependency{
			// The lander needs navigation initialized before it arms.
			{Independent: "nav", Dependent: "lander", Phase: spec.PhaseInit},
		},
		Platform: spec.Platform{Procs: []spec.Proc{
			{ID: "p1", Capacity: spec.Resources{CPU: 8, MemoryKB: 1024, PowerMW: 1000}},
			{ID: "p2", Capacity: spec.Resources{CPU: 8, MemoryKB: 1024, PowerMW: 1000}},
		}},
		FrameLen:    20 * time.Millisecond,
		DwellFrames: 25, // the go-around path makes the graph cyclic
		Retarget:    spec.RetargetBuffer,
	}
}

func main() {
	rs := buildSpec()
	apps := map[spec.AppID]core.App{}
	for _, decl := range rs.RealApps() {
		decl := decl
		apps[decl.ID] = core.NewBasicApp(&decl)
	}
	sys, err := core.NewSystem(core.Options{
		Spec: rs,
		Apps: apps,
		Classifier: func(f map[envmon.Factor]string) spec.EnvState {
			return spec.EnvState("phase-" + f["flight-phase"])
		},
		InitialFactors: map[envmon.Factor]string{"flight-phase": "takeoff"},
		Script: []envmon.Event{
			{Frame: 100, Factor: "flight-phase", Value: "cruise"},
			{Frame: 400, Factor: "flight-phase", Value: "landing"},
			{Frame: 500, Factor: "flight-phase", Value: "cruise"}, // go-around!
			{Frame: 700, Factor: "flight-phase", Value: "landing"},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer sys.Close()

	if err := sys.Run(900); err != nil {
		log.Fatal(err)
	}

	fmt.Println("mission phases drove these assured reconfigurations (no failures involved):")
	for _, r := range sys.Trace().Reconfigs() {
		fmt.Printf("  [%d,%d] %-8s -> %-8s (%d frames)\n", r.StartC, r.EndC, r.From, r.To, r.Frames())
	}
	fmt.Printf("final configuration: %s\n", sys.Kernel().Current())

	// The go-around at frame 500 arrives 100 frames after entering
	// landing — the dwell guard (25 frames) has elapsed, so the system
	// returns to cruise promptly; had the phases flapped faster, the
	// guard would have bounded the rate.
	if violations := sys.CheckProperties(); len(violations) == 0 {
		fmt.Println("SP1-SP4: all properties hold — mode changes get the same assurance as failures")
	} else {
		for _, v := range violations {
			fmt.Printf("violation: %s\n", v)
		}
	}
}
