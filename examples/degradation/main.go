// Degradation: the section 5.3 restriction-time analysis, live.
//
// The example computes the two analytic worst-case bounds on service
// restriction for the avionics system — the longest-chain sum Σ T(i-1,i)
// and the interposed-safe-configuration bound max{T(i,s)} — then measures
// actual restriction under a worst-case double failure, both with the
// published choice table and with the mechanically interposed one
// (statics.Interpose), showing how interposition trades one longer direct
// transition for a guaranteed single hop to safety.
//
// Run with: go run ./examples/degradation
package main

import (
	"fmt"
	"log"

	"repro/internal/avionics"
	"repro/internal/envmon"
	"repro/internal/inject"
	"repro/internal/spec"
	"repro/internal/statics"
)

func main() {
	rs := avionics.Spec()
	rs.DwellFrames = 1

	report, err := statics.Check(rs)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("analytic bounds (section 5.3):")
	fmt.Printf("  longest chain to safety: %v = %d frames\n",
		report.Restriction.LongestChain, report.Restriction.LongestChainFrames)
	fmt.Printf("  interposing %s: max{T(i,s)} = %d frames\n\n",
		report.Restriction.InterposedSafe, report.Restriction.InterposedBoundFrames)

	// Worst case for the chain: both alternators fail 2 frames apart, so
	// the second failure buffers behind the full->reduced window and a
	// second window follows immediately.
	script := []envmon.Event{
		{Frame: 10, Factor: avionics.FactorAlt1, Value: avionics.AltFailed},
		{Frame: 12, Factor: avionics.FactorAlt2, Value: avionics.AltFailed},
	}

	measure := func(label string, override func(*spec.ReconfigSpec) error) {
		sys := rs
		if override != nil {
			copied := avionics.Spec()
			copied.DwellFrames = 1
			if err := override(copied); err != nil {
				log.Fatal(err)
			}
			sys = copied
		}
		sc, err := avionics.NewScenarioWithSpec(sys, avionics.ScenarioOptions{
			Initial:     avionics.AircraftState{AltFt: 5000, AirspeedKts: 100},
			Script:      script,
			DwellFrames: 1,
		})
		if err != nil {
			log.Fatal(err)
		}
		defer sc.Close()
		if err := sc.Sys.Run(120); err != nil {
			log.Fatal(err)
		}
		m := inject.Collect(sc.Sys.Trace(), sys, int64(sys.DwellFrames)+2)
		fmt.Printf("%s:\n", label)
		for _, r := range sc.Sys.Trace().Reconfigs() {
			fmt.Printf("  window [%d,%d] %s -> %s (%d frames)\n",
				r.StartC, r.EndC, r.From, r.To, r.Frames())
		}
		fmt.Printf("  worst chain: %d frames, worst window: %d frames, violations: %d\n\n",
			m.ChainMax, m.WindowMax, len(m.Violations))
	}

	measure("measured, published choice table (chain full->reduced->minimal)", nil)
	measure("measured, interposed choice table (every unsafe->unsafe hop routed through minimal)",
		func(target *spec.ReconfigSpec) error {
			interposed, err := statics.Interpose(target, avionics.CfgMinimal)
			if err != nil {
				return err
			}
			*target = *interposed
			return nil
		})

	fmt.Println("see DESIGN.md experiment E2 for the paper mapping")
}
