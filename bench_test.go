package repro_test

import (
	"fmt"
	"math/rand"
	"testing"
	"time"

	"repro/internal/avionics"
	"repro/internal/core"
	"repro/internal/envmon"
	"repro/internal/frame"
	"repro/internal/fta"
	"repro/internal/inject"
	"repro/internal/masking"
	"repro/internal/scram"
	"repro/internal/spec"
	"repro/internal/spectest"
	"repro/internal/stable"
	"repro/internal/statics"
	"repro/internal/trace"
)

// BenchmarkTable1SFTAProtocol measures one complete Table 1 exchange: a
// failure signal through the kernel's trigger, halt, prepare, initialize
// frames to completion, including the stable-storage command traffic.
func BenchmarkTable1SFTAProtocol(b *testing.B) {
	rs := spectest.ThreeConfig()
	rs.DwellFrames = 0
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st := stable.NewStore()
		k, err := scram.NewKernel(rs, st)
		if err != nil {
			b.Fatal(err)
		}
		k.Signal(envmon.Signal{Source: spectest.AppMonitor, State: spectest.EnvReduced, Frame: 0})
		for f := int64(0); f <= 4; f++ { // trigger + halt + prepare + 2 init frames
			if err := k.EndOfFrame(frame.Context{Frame: f}); err != nil {
				b.Fatal(err)
			}
			st.Commit()
		}
		if k.Current() != spectest.CfgReduced {
			b.Fatalf("protocol did not complete: %s", k.Current())
		}
	}
}

// benchTrace builds a recorded trace with one reconfiguration per
// `period` cycles.
func benchTrace(cycles int, period int64) (*trace.Trace, *spec.ReconfigSpec) {
	rs := spectest.ThreeConfig()
	tr := &trace.Trace{System: "bench", FrameLen: rs.FrameLen}
	cfg := spectest.CfgFull
	for c := int64(0); c < int64(cycles); c++ {
		phase := c % period
		st := trace.SysState{
			Cycle:  c,
			Config: cfg,
			Env:    spectest.EnvFull,
			Apps:   make(map[spec.AppID]trace.AppState, 3),
		}
		var status trace.ReconfStatus
		switch phase {
		case 1:
			status = trace.StatusInterrupted
			st.Env = spectest.EnvReduced
		case 2:
			status = trace.StatusHalted
			st.Env = spectest.EnvReduced
		case 3:
			status = trace.StatusPrepared
			st.Env = spectest.EnvReduced
		default:
			status = trace.StatusNormal
		}
		// Alternate between the two configurations at window ends.
		if phase == 4 {
			if cfg == spectest.CfgFull {
				cfg = spectest.CfgReduced
				st.Env = spectest.EnvReduced
			} else {
				cfg = spectest.CfgFull
				st.Env = spectest.EnvFull
			}
			st.Config = cfg
		}
		for _, id := range []spec.AppID{spectest.AppAP, spectest.AppFCS, spectest.AppMonitor} {
			s := status
			if status == trace.StatusInterrupted && id != spectest.AppMonitor {
				s = trace.StatusNormal
			}
			st.Apps[id] = trace.AppState{Status: s, Spec: "s", PreOK: true}
		}
		if err := tr.Append(st); err != nil {
			panic(err)
		}
	}
	return tr, rs
}

// BenchmarkTable2PropertyCheck measures the SP1-SP4 checkers over traces of
// increasing length (each containing one reconfiguration per 50 cycles).
func BenchmarkTable2PropertyCheck(b *testing.B) {
	for _, cycles := range []int{100, 1000, 10000} {
		tr, rs := benchTrace(cycles, 50)
		b.Run(fmt.Sprintf("cycles=%d", cycles), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if vs := trace.CheckAll(tr, rs); len(vs) != 0 {
					b.Fatalf("violations: %v", vs)
				}
			}
		})
	}
}

// BenchmarkFigure1ArchitectureFrame measures the cost of one fully wired
// system frame (applications + monitor + SCRAM + commits + recorder) as the
// application count grows.
func BenchmarkFigure1ArchitectureFrame(b *testing.B) {
	for _, nApps := range []int{2, 4, 8, 16} {
		b.Run(fmt.Sprintf("apps=%d", nApps), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			rs := spectest.Random(rng, nApps, 3, 3)
			apps := make(map[spec.AppID]core.App, nApps)
			for _, decl := range rs.RealApps() {
				decl := decl
				apps[decl.ID] = core.NewBasicApp(&decl)
			}
			sys, err := core.NewSystem(core.Options{
				Spec:           rs,
				Apps:           apps,
				Classifier:     func(f map[envmon.Factor]string) spec.EnvState { return rs.StartEnv },
				InitialFactors: map[envmon.Factor]string{},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer sys.Close()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := sys.Step(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFigure2Obligations measures the static proof-obligation discharge
// (the TCC analog) for the avionics specification and for larger random
// specifications.
func BenchmarkFigure2Obligations(b *testing.B) {
	b.Run("avionics", func(b *testing.B) {
		rs := avionics.Spec()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			report, err := statics.Check(rs)
			if err != nil || !report.AllDischarged() {
				b.Fatalf("err=%v failures=%v", err, report.Failures())
			}
		}
	})
	for _, size := range []struct{ apps, cfgs, envs int }{{4, 4, 3}, {8, 6, 4}} {
		rng := rand.New(rand.NewSource(7))
		rs := spectest.Random(rng, size.apps, size.cfgs, size.envs)
		b.Run(fmt.Sprintf("random-%dx%dx%d", size.apps, size.cfgs, size.envs), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := statics.Check(rs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkEquipmentAnalysis measures the section 5.1 sweep.
func BenchmarkEquipmentAnalysis(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := masking.EquipmentSweep(4, 2, 16); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMaskedFTABaseline measures the Schlichting-Schneider baseline:
// a 1000-frame mission with two spare restarts.
func BenchmarkMaskedFTABaseline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		st, err := masking.RunMaskedMission(4, 2, 1000, []int64{200, 600})
		if err != nil || st.Exhausted {
			b.Fatalf("err=%v stats=%+v", err, st)
		}
	}
}

// BenchmarkRestrictionTimeAnalysis measures the section 5.3 analysis
// (longest chain enumeration + interposition bounds) as part of Check.
func BenchmarkRestrictionTimeAnalysis(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	rs := spectest.Random(rng, 3, 6, 4) // denser transition graph
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		report, err := statics.Check(rs)
		if err != nil {
			b.Fatal(err)
		}
		if report.Restriction.LongestChainFrames == 0 {
			b.Fatal("no chain found")
		}
	}
}

// BenchmarkAvionicsScenario measures whole-system frames of the section 7
// instantiation, including dynamics, sensors, bus traffic, and control laws.
func BenchmarkAvionicsScenario(b *testing.B) {
	sc, err := avionics.NewScenario(avionics.ScenarioOptions{
		Initial:     avionics.AircraftState{AltFt: 5000, AirspeedKts: 100},
		DwellFrames: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer sc.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sc.Sys.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCanonicalCampaign measures a full fault-injection campaign
// (system construction, 200 frames with churn, metric collection).
func BenchmarkCanonicalCampaign(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		m, _, err := inject.CanonicalCampaign{
			Seed: int64(i), Frames: 200, EnvEvents: 6, Dwell: 2,
		}.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(m.Violations) != 0 {
			b.Fatalf("violations: %v", m.Violations)
		}
	}
}

// BenchmarkSchedulerAblation compares the goroutine-barrier scheduler
// against the sequential ablation for CPU-busy tasks — the design choice
// DESIGN.md calls out (repro hint: "goroutines ease multi-application FTA
// simulation").
func BenchmarkSchedulerAblation(b *testing.B) {
	work := func(n int) frame.Task {
		return taskFunc{id: fmt.Sprintf("t%d", n), fn: func(frame.Context) error {
			x := 0.0
			for i := 0; i < 2000; i++ {
				x += float64(i) * 1.000001
			}
			if x < 0 {
				return fmt.Errorf("unreachable")
			}
			return nil
		}}
	}
	for _, mode := range []string{"concurrent", "sequential"} {
		for _, tasks := range []int{4, 16} {
			b.Run(fmt.Sprintf("%s/tasks=%d", mode, tasks), func(b *testing.B) {
				var opts []frame.Option
				if mode == "sequential" {
					opts = append(opts, frame.Sequential())
				}
				s, err := frame.NewScheduler(time.Millisecond, opts...)
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				for i := 0; i < tasks; i++ {
					if err := s.AddTask(work(i)); err != nil {
						b.Fatal(err)
					}
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := s.Step(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// taskFunc adapts a function to frame.Task.
type taskFunc struct {
	id string
	fn func(frame.Context) error
}

func (t taskFunc) TaskID() string             { return t.id }
func (t taskFunc) Tick(c frame.Context) error { return t.fn(c) }

// BenchmarkStableCommit measures the frame-atomic commit with a typical
// per-frame write set.
func BenchmarkStableCommit(b *testing.B) {
	s := stable.NewStore()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for k := 0; k < 8; k++ {
			s.PutInt64(fmt.Sprintf("key-%d", k), int64(i))
		}
		s.Commit()
	}
}

// BenchmarkStableCommitReplicated measures the hardened commit path against
// 1, 3, and 5 fault-free replicas — the marginal cost of mirroring,
// checksumming, and the commit record over the plain staged commit above.
func BenchmarkStableCommitReplicated(b *testing.B) {
	for _, replicas := range []int{1, 3, 5} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			s := stable.NewHardenedStore(stable.MediaProfile{Replicas: replicas, Seed: 1}, "bench")
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				for k := 0; k < 8; k++ {
					s.PutInt64(fmt.Sprintf("key-%d", k), int64(i))
				}
				s.Commit()
			}
		})
	}
}

// BenchmarkDwellGuardChurn measures the E3 churn experiment's system at two
// dwell settings (the runtime cost of the cycle guard is the comparison of
// interest; the reconfiguration counts are reported by cmd/faultsim).
func BenchmarkDwellGuardChurn(b *testing.B) {
	for _, dwell := range []int{1, 25} {
		b.Run(fmt.Sprintf("dwell=%d", dwell), func(b *testing.B) {
			var script []envmon.Event
			val := avionics.AltFailed
			for f := int64(10); f < 200; f += 20 {
				script = append(script, envmon.Event{Frame: f, Factor: avionics.FactorAlt1, Value: val})
				if val == avionics.AltFailed {
					val = avionics.AltOK
				} else {
					val = avionics.AltFailed
				}
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc, err := avionics.NewScenario(avionics.ScenarioOptions{
					Initial:     avionics.AircraftState{AltFt: 5000, AirspeedKts: 100},
					Script:      script,
					DwellFrames: dwell,
				})
				if err != nil {
					b.Fatal(err)
				}
				if err := sc.Sys.Run(200); err != nil {
					b.Fatal(err)
				}
				sc.Close()
			}
		})
	}
}

// BenchmarkSFTADerive measures reconstruction of the fault-tolerant-action
// structure from a recorded trace.
func BenchmarkSFTADerive(b *testing.B) {
	tr, _ := benchTrace(5000, 50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		sftas := fta.Derive(tr)
		if len(sftas) == 0 {
			b.Fatal("no SFTAs derived")
		}
	}
}

// BenchmarkProtocolCompressionAblation compares the staged Table 1 protocol
// against the section 6.3 compressed protocol on heterogeneous phase
// durations, reporting both the execution cost and the achieved window
// length (frames/window).
func BenchmarkProtocolCompressionAblation(b *testing.B) {
	mkSpec := func(compress bool) *spec.ReconfigSpec {
		rs := spectest.ThreeConfig()
		rs.Deps = nil
		rs.DwellFrames = 0
		rs.Compression = compress
		for i := range rs.Apps {
			for j := range rs.Apps[i].Specs {
				sp := &rs.Apps[i].Specs[j]
				switch rs.Apps[i].ID {
				case spectest.AppAP:
					sp.HaltFrames, sp.PrepareFrames, sp.InitFrames = 3, 1, 1
				case spectest.AppFCS:
					sp.HaltFrames, sp.PrepareFrames, sp.InitFrames = 1, 3, 1
				}
			}
		}
		for i := range rs.Transitions {
			rs.Transitions[i].MaxFrames = 12
		}
		return rs
	}
	for _, mode := range []struct {
		name     string
		compress bool
	}{{"staged", false}, {"compressed", true}} {
		b.Run(mode.name, func(b *testing.B) {
			rs := mkSpec(mode.compress)
			var window int64
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				st := stable.NewStore()
				k, err := scram.NewKernel(rs, st)
				if err != nil {
					b.Fatal(err)
				}
				k.Signal(envmon.Signal{Source: spectest.AppMonitor, State: spectest.EnvReduced, Frame: 0})
				f := int64(0)
				for ; f < 20; f++ {
					if err := k.EndOfFrame(frame.Context{Frame: f}); err != nil {
						b.Fatal(err)
					}
					st.Commit()
					if !k.Reconfiguring() && f > 0 {
						break
					}
				}
				window = f + 1
			}
			b.ReportMetric(float64(window), "frames/window")
		})
	}
}
