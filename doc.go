// Package repro is a complete Go reproduction of "Assured Reconfiguration
// of Fail-Stop Systems" (Strunk, Knight, Aiello — DSN 2005): a framework for
// building safety-critical systems that tolerate component failures by
// assured reconfiguration over fail-stop processors instead of (or in
// addition to) hardware masking.
//
// See README.md for the architecture overview, DESIGN.md for the system
// inventory and per-experiment index, and EXPERIMENTS.md for the
// paper-versus-measured record. The benchmarks in bench_test.go regenerate
// the cost side of every table and figure; `go run ./cmd/faultsim
// -experiment all` regenerates the tables themselves.
package repro
