package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestLoadgenReport boots the self-hosted fleet, runs a tiny traffic
// campaign, and checks the report carries the density and latency fields the
// CI smoke job asserts on.
func TestLoadgenReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	var out bytes.Buffer
	err := run([]string{"-loadgen", "-tenants", "8", "-frames", "60", "-workers", "2", "-out", path}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		SchemaVersion  int     `json:"schema_version"`
		Tenants        int     `json:"tenants"`
		FramesTotal    int64   `json:"frames_total"`
		AggregateFPS   float64 `json:"aggregate_fps"`
		SystemsPerCore float64 `json:"systems_per_core"`
		Ops            int     `json:"ops"`
		P99MS          float64 `json:"p99_ms"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report: %v\n%s", err, data)
	}
	if rep.SchemaVersion != 1 {
		t.Errorf("schema_version = %d, want 1", rep.SchemaVersion)
	}
	if rep.Tenants != 8 || rep.FramesTotal != 8*60 {
		t.Errorf("tenants/frames = %d/%d, want 8/480", rep.Tenants, rep.FramesTotal)
	}
	if rep.SystemsPerCore <= 0 || rep.AggregateFPS <= 0 {
		t.Errorf("density not reported: fps=%v systems_per_core=%v", rep.AggregateFPS, rep.SystemsPerCore)
	}
	// At minimum the 8 spawns are measured ops, so a p99 must exist.
	if rep.Ops < 8 || rep.P99MS <= 0 {
		t.Errorf("latency not reported: ops=%d p99=%v", rep.Ops, rep.P99MS)
	}
}

func TestLoadgenRejectsBadParams(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-loadgen", "-tenants", "0"}, &out); err == nil {
		t.Fatal("no error for -tenants 0")
	}
}
