// Command fleetd runs the fleet host: a long-running service multiplexing
// many reconfigurable systems — one core.System per tenant — over a shared
// batched scheduler, exposed through the HTTP/JSON control plane
// (internal/fleet.API):
//
//	POST   /systems              spawn a tenant from a SpawnSpec
//	GET    /systems[/{id}]       list / status
//	DELETE /systems/{id}         kill
//	POST   /systems/{id}/inject  env, procfail, procrepair, storage
//	GET    /systems/{id}/metrics | /journal | /traces | /trace/{tid}
//	GET    /presets, /stats
//
// Usage:
//
//	fleetd -addr 127.0.0.1:8080                 # serve until SIGINT/SIGTERM
//	fleetd -loadgen -tenants 200 -frames 400 -out BENCH_fleet.json
//
// With -loadgen, fleetd boots its own host and control plane on a loopback
// port, drives it with a traffic generator — spawning scripted tenants over
// HTTP, hammering the control plane with status/inject/metrics/list traffic
// while every tenant runs to its frame budget — and writes a benchmark
// report: systems-per-core density (how many real-time systems one core
// sustains at the spec's frame rate) and control-plane latency percentiles.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/envmon"
	"repro/internal/fleet"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fleetd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fleetd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "control-plane listen address (loadgen defaults to a loopback ephemeral port)")
	shards := fs.Int("shards", 0, "scheduler shard workers (default GOMAXPROCS)")
	batch := fs.Int("batch", 0, "frames per tenant per sweep (default 8)")
	loadgen := fs.Bool("loadgen", false, "run the traffic generator against a self-hosted fleet and report density and control-plane latency")
	tenants := fs.Int("tenants", 200, "loadgen: tenants to spawn")
	frames := fs.Int64("frames", 400, "loadgen: frame budget per tenant")
	workers := fs.Int("workers", 8, "loadgen: concurrent control-plane clients")
	outPath := fs.String("out", "", "loadgen: write the JSON report here (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := fleet.Config{Shards: *shards, Batch: *batch}
	if *loadgen {
		bindAddr := *addr
		if fs.Lookup("addr").Value.String() == fs.Lookup("addr").DefValue {
			bindAddr = "127.0.0.1:0" // don't collide with a serving fleetd
		}
		return runLoadgen(out, cfg, bindAddr, *tenants, *frames, *workers, *outPath)
	}
	return serveFleet(out, cfg, *addr)
}

// serveFleet runs the host until SIGINT/SIGTERM.
func serveFleet(out io.Writer, cfg fleet.Config, addr string) error {
	host := fleet.NewHost(cfg)
	defer host.Close()
	srv := &http.Server{Addr: addr, Handler: fleet.NewAPI(host).Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(out, "fleetd: control plane on http://%s (POST /systems to spawn; GET /presets for specs)\n", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		return err
	case s := <-sig:
		fmt.Fprintf(out, "fleetd: %v: shutting down\n", s)
		return srv.Close()
	}
}

// benchReport is the BENCH_fleet.json shape. SystemsPerCore is the density
// headline: aggregate frames per second, divided by the real-time rate one
// system needs (1s / FrameLen), per core — how many always-on tenants a
// core of this machine sustains at the spec's frame rate.
type benchReport struct {
	Tenants         int     `json:"tenants"`
	FramesPerTenant int64   `json:"frames_per_tenant"`
	FramesTotal     int64   `json:"frames_total"`
	ElapsedSec      float64 `json:"elapsed_sec"`
	AggregateFPS    float64 `json:"aggregate_fps"`
	FrameLenMS      float64 `json:"frame_len_ms"`
	Cores           int     `json:"cores"`
	SystemsPerCore  float64 `json:"systems_per_core"`
	Shards          int     `json:"shards"`
	Batch           int     `json:"batch"`
	// Control-plane traffic: total ops issued by the generator while the
	// fleet ran, and their latency percentiles.
	Ops      int     `json:"ops"`
	OpErrors int     `json:"op_errors"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
}

// runLoadgen boots a fleet, spawns scripted tenants over the real HTTP
// control plane, keeps query/inject traffic flowing from `workers` clients
// until every tenant completes its frame budget, and writes the report.
func runLoadgen(out io.Writer, cfg fleet.Config, addr string, tenants int, frames int64, workers int, outPath string) error {
	if tenants <= 0 || frames <= 0 || workers <= 0 {
		return fmt.Errorf("-tenants, -frames and -workers must be positive")
	}
	host := fleet.NewHost(cfg)
	defer host.Close()
	srv := &http.Server{Handler: fleet.NewAPI(host).Handler()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", addr, err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(out, "fleetd loadgen: %d tenants x %d frames, %d clients, control plane %s\n",
		tenants, frames, workers, base)

	client := &http.Client{Timeout: 30 * time.Second}
	presets := fleet.Presets()
	lat := newLatencies(workers + 1) // slot 0 is the spawn loop's

	start := time.Now()

	// Query/inject workers run concurrently with spawning (the fleet starts
	// ticking at the first spawn, so control-plane traffic must overlap the
	// whole run, not trail it). Workers target already-spawned tenants only;
	// injections on tenants that already completed answer 400 — traffic, not
	// errors.
	var spawnCount atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 1; w <= workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				n := spawnCount.Load()
				if n == 0 {
					time.Sleep(time.Millisecond)
					continue
				}
				id := fmt.Sprintf("load-%d", (w*7919+i)%int(n))
				var err error
				switch i % 5 {
				case 0:
					_, err = lat.do(client, w, "GET", base+"/systems/"+id, nil)
				case 1:
					inj := fleet.Injection{Kind: "env", Factor: "alt2", Value: "failed"}
					if i%2 == 0 {
						inj.Value = "ok"
					}
					_, err = lat.do(client, w, "POST", base+"/systems/"+id+"/inject", inj)
				case 2:
					_, err = lat.do(client, w, "GET", base+"/systems/"+id+"/metrics", nil)
				case 3:
					_, err = lat.do(client, w, "GET", base+"/systems", nil)
				default:
					_, err = lat.do(client, w, "GET", base+"/stats", nil)
				}
				if err != nil {
					lat.fail(w)
				}
			}
		}()
	}

	// Spawn loop: every spawn is a measured control-plane op (slot 0). Each
	// tenant carries a staggered degrade/repair script so the run exercises
	// full reconfigurations, not idle ticking.
	for i := 0; i < tenants; i++ {
		ss := fleet.SpawnSpec{
			ID:     fmt.Sprintf("load-%d", i),
			Preset: presets[i%len(presets)],
			Seed:   int64(1 + i),
			Frames: frames,
			Script: []envmon.Event{
				{Frame: int64(10 + i%40), Factor: "alt1", Value: "failed"},
				{Frame: frames/2 + int64(i%40), Factor: "alt1", Value: "ok"},
			},
		}
		code, err := lat.do(client, 0, "POST", base+"/systems", ss)
		if err != nil || code != http.StatusCreated {
			close(done)
			wg.Wait()
			if err == nil {
				err = fmt.Errorf("status %d", code)
			}
			return fmt.Errorf("spawning %s: %w", ss.ID, err)
		}
		spawnCount.Store(int64(i + 1))
	}

	for !allCompleted(host) {
		time.Sleep(5 * time.Millisecond)
	}
	elapsed := time.Since(start)
	close(done)
	wg.Wait()

	framesTotal := host.FramesStepped()
	frameLen := 20 * time.Millisecond // the threeconfig family's FrameLen
	fps := float64(framesTotal) / elapsed.Seconds()
	cores := runtime.GOMAXPROCS(0)
	durs, errs := lat.merge()
	rep := benchReport{
		Tenants:         tenants,
		FramesPerTenant: frames,
		FramesTotal:     framesTotal,
		ElapsedSec:      elapsed.Seconds(),
		AggregateFPS:    fps,
		FrameLenMS:      float64(frameLen) / float64(time.Millisecond),
		Cores:           cores,
		// aggregate fps / (frames one real-time system needs per second),
		// per core: sustained always-on tenants per core.
		SystemsPerCore: fps * frameLen.Seconds() / float64(cores),
		Shards:         host.Stats().Shards,
		Batch:          host.Stats().Batch,
		Ops:            len(durs),
		OpErrors:       errs,
		P50MS:          percentileMS(durs, 0.50),
		P95MS:          percentileMS(durs, 0.95),
		P99MS:          percentileMS(durs, 0.99),
	}

	w, closeOut, err := cli.Output(outPath, out)
	if err != nil {
		return err
	}
	if err := cli.WriteJSON(w, rep); err != nil {
		closeOut()
		return err
	}
	if err := closeOut(); err != nil {
		return err
	}
	if outPath != "" && outPath != "-" {
		fmt.Fprintf(out, "fleetd loadgen: %.0f frames/s aggregate, %.1f systems/core, p99 %.2f ms -> %s\n",
			fps, rep.SystemsPerCore, rep.P99MS, outPath)
	}
	return nil
}

// allCompleted reports whether every tenant reached its frame budget.
func allCompleted(h *fleet.Host) bool {
	for _, st := range h.List() {
		if st.State == fleet.StateRunning {
			return false
		}
	}
	return true
}

// latencies collects per-worker op latencies without shared-slice contention
// (slot 0 belongs to the spawn loop and worker 0, which never overlap).
type latencies struct {
	mu    []sync.Mutex
	durs  [][]time.Duration
	fails []int
}

func newLatencies(workers int) *latencies {
	return &latencies{
		mu:    make([]sync.Mutex, workers),
		durs:  make([][]time.Duration, workers),
		fails: make([]int, workers),
	}
}

// do issues one timed control-plane request, draining and closing the body.
func (l *latencies) do(client *http.Client, slot int, method, url string, body any) (int, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, err
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	d := time.Since(t0)
	l.mu[slot].Lock()
	l.durs[slot] = append(l.durs[slot], d)
	l.mu[slot].Unlock()
	return resp.StatusCode, nil
}

func (l *latencies) fail(slot int) {
	l.mu[slot].Lock()
	l.fails[slot]++
	l.mu[slot].Unlock()
}

// merge gathers every worker's samples, sorted for percentile lookup.
func (l *latencies) merge() ([]time.Duration, int) {
	var all []time.Duration
	var fails int
	for i := range l.durs {
		l.mu[i].Lock()
		all = append(all, l.durs[i]...)
		fails += l.fails[i]
		l.mu[i].Unlock()
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	return all, fails
}

// percentileMS returns the p-quantile of sorted samples in milliseconds.
func percentileMS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}
