// Command fleetd runs the fleet host: a long-running service multiplexing
// many reconfigurable systems — one core.System per tenant — over a shared
// batched scheduler, exposed through the HTTP/JSON control plane
// (internal/fleet.API):
//
//	POST   /systems              spawn a tenant from a SpawnSpec
//	GET    /systems[/{id}]       list / status
//	DELETE /systems/{id}         kill
//	POST   /systems/{id}/inject  env, procfail, procrepair, storage
//	GET    /systems/{id}/metrics | /journal | /traces | /trace/{tid}
//	GET    /presets, /stats
//
// Usage:
//
//	fleetd -addr 127.0.0.1:8080                 # serve until SIGINT/SIGTERM
//	fleetd -data /var/lib/fleetd                # durable: recover on boot
//	fleetd -loadgen -tenants 200 -frames 400 -out BENCH_fleet.json
//	fleetd -chaos -tenants 8 -crashes 2 -seed 7 # seeded crash storm
//
// With -data, the host journals a fleet manifest — every SpawnSpec, every
// acked injection, every kill, periodic per-tenant checkpoints — to
// CRC-checksummed replicated stable storage under the directory. A restarted
// fleetd (after SIGTERM or kill -9 alike) re-spawns every tenant and replays
// it to its pre-crash frame, byte-identical to an uninterrupted run. SIGTERM
// drains gracefully: the control plane answers 503, a final checkpoint
// commits, then the process exits. SIGINT hard-stops without the final
// checkpoint (recovery falls back to the last periodic one, like a crash).
//
// With -loadgen, fleetd boots its own host and control plane on a loopback
// port, drives it with a traffic generator — spawning scripted tenants over
// HTTP, hammering the control plane with status/inject/metrics/list traffic
// while every tenant runs to its frame budget — and writes a benchmark
// report: systems-per-core density (how many real-time systems one core
// sustains at the spec's frame rate) and control-plane latency percentiles.
// Adding -durabench appends durability rows: host recovery time, and
// steady-state memory per tenant at a deep frame with retention on vs off.
//
// With -chaos, fleetd runs a seeded fleet/chaos storm in-process — host
// crash-restart cycles, tenant panics, storage faults, torn manifest
// writes — and exits non-zero unless every tenant passes the
// restart-equivalence check.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/envmon"
	"repro/internal/fleet"
	"repro/internal/fleet/chaos"
	"repro/internal/stable"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "fleetd:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fleetd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "control-plane listen address (loadgen defaults to a loopback ephemeral port)")
	shards := fs.Int("shards", 0, "scheduler shard workers (default GOMAXPROCS)")
	batch := fs.Int("batch", 0, "frames per tenant per sweep (default 8)")
	dataDir := fs.String("data", "", "durable mode: journal the fleet manifest under this directory and recover from it on boot")
	retain := fs.Int64("retain-frames", 0, "default journal/trace retention horizon in frames for spawned tenants (0 = unbounded)")
	ckptEvery := fs.Int64("checkpoint-every", 0, "per-tenant checkpoint cadence in frames (default 64)")
	loadgen := fs.Bool("loadgen", false, "run the traffic generator against a self-hosted fleet and report density and control-plane latency")
	chaosMode := fs.Bool("chaos", false, "run a seeded chaos storm (crash-restart cycles, tenant panics, torn manifest writes) and verify restart equivalence")
	durabench := fs.Bool("durabench", false, "with -loadgen: append recovery-time and memory-per-tenant durability rows to the report")
	tenants := fs.Int("tenants", 200, "loadgen/chaos: tenants to spawn")
	frames := fs.Int64("frames", 400, "loadgen/chaos: frame budget per tenant")
	workers := fs.Int("workers", 8, "loadgen: concurrent control-plane clients")
	seed := fs.Int64("seed", 1, "chaos: storm seed (same seed, same storm)")
	crashes := fs.Int("crashes", 2, "chaos: host crash-restart cycles")
	panics := fs.Int("panics", 2, "chaos: tenant panic injections")
	torn := fs.Int("torn-writes", 3, "chaos: manifest records torn on one replica per crash")
	outPath := fs.String("out", "", "loadgen/chaos: write the JSON report here (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := fleet.Config{Shards: *shards, Batch: *batch, RetainFrames: *retain, CheckpointEvery: *ckptEvery}
	switch {
	case *chaosMode:
		return runChaos(out, chaos.Plan{
			Seed:          *seed,
			Tenants:       *tenants,
			Frames:        *frames,
			Crashes:       *crashes,
			Panics:        *panics,
			StorageFaults: *panics,
			TornWrites:    *torn,
			RetainFrames:  *retain,
		}, *outPath)
	case *loadgen:
		bindAddr := *addr
		if fs.Lookup("addr").Value.String() == fs.Lookup("addr").DefValue {
			bindAddr = "127.0.0.1:0" // don't collide with a serving fleetd
		}
		return runLoadgen(out, cfg, bindAddr, *tenants, *frames, *workers, *durabench, *outPath)
	default:
		return serveFleet(out, cfg, *addr, *dataDir)
	}
}

// mountManifest opens (or initializes) the durable manifest store: two file
// replicas under dir, CRC-framed and healed by read repair. kill -9 safe by
// construction — records stage to temp files and rename into place, and a
// record torn anyway is caught by its checksum and converged past.
func mountManifest(dir string) (*stable.Store, error) {
	var media []stable.Medium
	for _, rep := range []string{"r0", "r1"} {
		m, err := stable.NewFileMedium(filepath.Join(dir, rep))
		if err != nil {
			return nil, fmt.Errorf("opening manifest replica %s: %w", rep, err)
		}
		media = append(media, m)
	}
	return stable.NewHardened(stable.MountReplicatedStore(media...)), nil
}

// serveFleet runs the host until SIGINT (hard stop) or SIGTERM (graceful
// drain). With a data directory it recovers the pre-crash fleet first.
func serveFleet(out io.Writer, cfg fleet.Config, addr, dataDir string) error {
	var host *fleet.Host
	if dataDir != "" {
		st, err := mountManifest(dataDir)
		if err != nil {
			return err
		}
		cfg.Manifest = st
		t0 := time.Now()
		h, rec, err := fleet.Recover(cfg)
		if err != nil {
			return fmt.Errorf("recovering fleet from %s: %w", dataDir, err)
		}
		host = h
		fmt.Fprintf(out, "fleetd: recovered %d tenants (%d running, %d completed, %d quarantined, %d dropped) from %s in %s\n",
			rec.Tenants, rec.Running, rec.Completed, len(rec.Quarantined), len(rec.Dropped), dataDir, time.Since(t0).Round(time.Millisecond))
		for _, id := range rec.Quarantined {
			fmt.Fprintf(out, "fleetd: tenant %s recovered quarantined\n", id)
		}
		for _, id := range rec.Dropped {
			fmt.Fprintf(out, "fleetd: unrecoverable: %s\n", id)
		}
	} else {
		host = fleet.NewHost(cfg)
	}

	srv := &http.Server{Addr: addr, Handler: fleet.NewAPI(host).Handler()}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	fmt.Fprintf(out, "fleetd: control plane on http://%s (POST /systems to spawn; GET /presets for specs)\n", addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		host.Close()
		return err
	case s := <-sig:
		if s == syscall.SIGTERM && dataDir != "" {
			// Graceful drain: refuse new mutations, stop the sweep, commit
			// the final checkpoint barrier, then exit. A recovered fleetd
			// resumes from exactly these frames.
			fmt.Fprintf(out, "fleetd: %v: draining (final checkpoint barrier)\n", s)
			host.Drain()
		} else {
			// Hard stop: no final checkpoint. Recovery falls back to the
			// last periodic one — same as a crash, by design.
			fmt.Fprintf(out, "fleetd: %v: hard stop\n", s)
			host.Close()
		}
		return srv.Close()
	}
}

// runChaos executes a seeded storm and reports its outcome; a dirty storm
// (any mismatch, any unchecked tenant) is a non-zero exit.
func runChaos(out io.Writer, plan chaos.Plan, outPath string) error {
	fmt.Fprintf(out, "fleetd chaos: seed %d, %d tenants x %d frames, %d crashes\n",
		plan.Seed, plan.Tenants, plan.Frames, plan.Crashes)
	o := chaos.Run(plan)
	w, closeOut, err := cli.Output(outPath, out)
	if err != nil {
		return err
	}
	if err := cli.WriteJSON(w, o); err != nil {
		closeOut()
		return err
	}
	if err := closeOut(); err != nil {
		return err
	}
	if !o.Ok() {
		return fmt.Errorf("chaos storm failed: %d mismatches, %d errors, %d/%d checked",
			len(o.Mismatches), len(o.Errors), o.Checked, o.Tenants)
	}
	fmt.Fprintf(out, "fleetd chaos: clean — %d tenants checked, %d crashes, %d injections, %d torn writes healed\n",
		o.Checked, o.Crashes, o.Injected, o.TornWrites)
	return nil
}

// benchReport is the BENCH_fleet.json shape. SystemsPerCore is the density
// headline: aggregate frames per second, divided by the real-time rate one
// system needs (1s / FrameLen), per core — how many always-on tenants a
// core of this machine sustains at the spec's frame rate.
type benchReport struct {
	Tenants         int     `json:"tenants"`
	FramesPerTenant int64   `json:"frames_per_tenant"`
	FramesTotal     int64   `json:"frames_total"`
	ElapsedSec      float64 `json:"elapsed_sec"`
	AggregateFPS    float64 `json:"aggregate_fps"`
	FrameLenMS      float64 `json:"frame_len_ms"`
	Cores           int     `json:"cores"`
	SystemsPerCore  float64 `json:"systems_per_core"`
	Shards          int     `json:"shards"`
	Batch           int     `json:"batch"`
	// Control-plane traffic: total ops issued by the generator while the
	// fleet ran, and their latency percentiles.
	Ops      int     `json:"ops"`
	OpErrors int     `json:"op_errors"`
	P50MS    float64 `json:"p50_ms"`
	P95MS    float64 `json:"p95_ms"`
	P99MS    float64 `json:"p99_ms"`
	// Durability rows (present with -durabench).
	Durability *durabilityReport `json:"durability,omitempty"`
}

// durabilityReport holds the -durabench rows: how long a crashed host takes
// to recover its whole fleet by deterministic replay, and the steady-state
// heap cost of one tenant at a deep frame — flat with the retention window
// on, linear in frames with it off.
type durabilityReport struct {
	RecoveryTenants     int     `json:"recovery_tenants"`
	RecoveryFrames      int64   `json:"recovery_frames_per_tenant"`
	RecoverySec         float64 `json:"recovery_sec"`
	RecoveryMSPerTenant float64 `json:"recovery_ms_per_tenant"`
	MemFrames           int64   `json:"mem_frames"`
	MemRetainFrames     int64   `json:"mem_retain_frames"`
	MemPerTenantRetain  int64   `json:"mem_per_tenant_bytes_retained"`
	MemPerTenantGrow    int64   `json:"mem_per_tenant_bytes_unbounded"`
}

// runDurabench measures the two durability numbers. Recovery: a durable
// fleet runs to completion over file-backed manifest replicas, the host is
// hard-stopped (no drain — the kill -9 shape), and the wall time of
// fleet.Recover — manifest load plus full deterministic replay of every
// tenant — is the row. Memory: identical systems run to a deep frame with
// the retention window on vs off; the heap delta per tenant shows the
// bounded-state contract (flat vs linear).
func runDurabench(out io.Writer, cfg fleet.Config, tenants int, frames int64) (*durabilityReport, error) {
	rep := &durabilityReport{
		RecoveryTenants: tenants,
		RecoveryFrames:  frames,
		MemFrames:       20_000,
		MemRetainFrames: 64,
	}
	fmt.Fprintf(out, "fleetd durabench: crash-recovering %d tenants x %d frames\n", tenants, frames)
	d, err := measureRecovery(cfg, tenants, frames)
	if err != nil {
		return nil, fmt.Errorf("recovery bench: %w", err)
	}
	rep.RecoverySec = d.Seconds()
	rep.RecoveryMSPerTenant = float64(d) / float64(time.Millisecond) / float64(tenants)

	fmt.Fprintf(out, "fleetd durabench: measuring heap per tenant at frame %d\n", rep.MemFrames)
	retained, err := measureMemPerTenant(rep.MemFrames, rep.MemRetainFrames)
	if err != nil {
		return nil, fmt.Errorf("retained-memory bench: %w", err)
	}
	unbounded, err := measureMemPerTenant(rep.MemFrames, -1)
	if err != nil {
		return nil, fmt.Errorf("unbounded-memory bench: %w", err)
	}
	rep.MemPerTenantRetain, rep.MemPerTenantGrow = retained, unbounded
	return rep, nil
}

// measureRecovery times fleet.Recover over a crashed durable host.
func measureRecovery(cfg fleet.Config, tenants int, frames int64) (time.Duration, error) {
	dir, err := os.MkdirTemp("", "fleetd-durabench-")
	if err != nil {
		return 0, err
	}
	defer os.RemoveAll(dir)
	st, err := mountManifest(dir)
	if err != nil {
		return 0, err
	}
	cfg.Manifest = st
	host := fleet.NewHost(cfg)
	presets := fleet.Presets()
	for i := 0; i < tenants; i++ {
		ss := fleet.SpawnSpec{
			ID:     fmt.Sprintf("dura-%d", i),
			Preset: presets[i%len(presets)],
			Seed:   int64(1 + i),
			Frames: frames,
			// A degrade/repair pair so every replay re-runs a real
			// reconfiguration, not idle ticking.
			Script: []envmon.Event{
				{Frame: int64(10 + i%40), Factor: "alt1", Value: "failed"},
				{Frame: frames/2 + int64(i%40), Factor: "alt1", Value: "ok"},
			},
		}
		if _, err := host.Spawn(ss); err != nil {
			host.Close()
			return 0, fmt.Errorf("spawning %s: %w", ss.ID, err)
		}
	}
	for !allCompleted(host) {
		time.Sleep(2 * time.Millisecond)
	}
	host.Close() // hard stop: no drain, the kill -9 shape

	st2, err := mountManifest(dir)
	if err != nil {
		return 0, err
	}
	cfg.Manifest = st2
	t0 := time.Now()
	h2, rec, err := fleet.Recover(cfg)
	if err != nil {
		return 0, err
	}
	d := time.Since(t0)
	defer h2.Drain()
	if rec.Tenants != tenants || len(rec.Dropped) > 0 {
		return 0, fmt.Errorf("recovered %d/%d tenants, %d dropped", rec.Tenants, tenants, len(rec.Dropped))
	}
	return d, nil
}

// measureMemPerTenant runs a batch of identical systems to a deep frame and
// returns the live heap delta per system after a full GC.
func measureMemPerTenant(frames, retain int64) (int64, error) {
	const batch = 8
	systems := make([]*core.System, 0, batch)
	defer func() {
		for _, s := range systems {
			s.Close()
		}
	}()
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < batch; i++ {
		opts, err := fleet.SpawnOptions(fleet.SpawnSpec{Preset: "threeconfig", Seed: int64(100 + i), RetainFrames: retain})
		if err != nil {
			return 0, err
		}
		sys, err := core.NewSystem(opts)
		if err != nil {
			return 0, err
		}
		systems = append(systems, sys)
		if err := sys.StepTo(frames); err != nil {
			return 0, err
		}
	}
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)
	return (int64(after.HeapAlloc) - int64(before.HeapAlloc)) / batch, nil
}

// runLoadgen boots a fleet, spawns scripted tenants over the real HTTP
// control plane, keeps query/inject traffic flowing from `workers` clients
// until every tenant completes its frame budget, and writes the report.
func runLoadgen(out io.Writer, cfg fleet.Config, addr string, tenants int, frames int64, workers int, durabench bool, outPath string) error {
	if tenants <= 0 || frames <= 0 || workers <= 0 {
		return fmt.Errorf("-tenants, -frames and -workers must be positive")
	}
	host := fleet.NewHost(cfg)
	defer host.Close()
	srv := &http.Server{Handler: fleet.NewAPI(host).Handler()}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("listening on %s: %w", addr, err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()
	fmt.Fprintf(out, "fleetd loadgen: %d tenants x %d frames, %d clients, control plane %s\n",
		tenants, frames, workers, base)

	client := &http.Client{Timeout: 30 * time.Second}
	presets := fleet.Presets()
	lat := newLatencies(workers + 1) // slot 0 is the spawn loop's

	start := time.Now()

	// Query/inject workers run concurrently with spawning (the fleet starts
	// ticking at the first spawn, so control-plane traffic must overlap the
	// whole run, not trail it). Workers target already-spawned tenants only;
	// injections on tenants that already completed answer 400 — traffic, not
	// errors.
	var spawnCount atomic.Int64
	done := make(chan struct{})
	var wg sync.WaitGroup
	for w := 1; w <= workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-done:
					return
				default:
				}
				n := spawnCount.Load()
				if n == 0 {
					time.Sleep(time.Millisecond)
					continue
				}
				id := fmt.Sprintf("load-%d", (w*7919+i)%int(n))
				var err error
				switch i % 5 {
				case 0:
					_, err = lat.do(client, w, "GET", base+"/systems/"+id, nil)
				case 1:
					inj := fleet.Injection{Kind: "env", Factor: "alt2", Value: "failed"}
					if i%2 == 0 {
						inj.Value = "ok"
					}
					_, err = lat.do(client, w, "POST", base+"/systems/"+id+"/inject", inj)
				case 2:
					_, err = lat.do(client, w, "GET", base+"/systems/"+id+"/metrics", nil)
				case 3:
					_, err = lat.do(client, w, "GET", base+"/systems", nil)
				default:
					_, err = lat.do(client, w, "GET", base+"/stats", nil)
				}
				if err != nil {
					lat.fail(w)
				}
			}
		}()
	}

	// Spawn loop: every spawn is a measured control-plane op (slot 0). Each
	// tenant carries a staggered degrade/repair script so the run exercises
	// full reconfigurations, not idle ticking.
	for i := 0; i < tenants; i++ {
		ss := fleet.SpawnSpec{
			ID:     fmt.Sprintf("load-%d", i),
			Preset: presets[i%len(presets)],
			Seed:   int64(1 + i),
			Frames: frames,
			Script: []envmon.Event{
				{Frame: int64(10 + i%40), Factor: "alt1", Value: "failed"},
				{Frame: frames/2 + int64(i%40), Factor: "alt1", Value: "ok"},
			},
		}
		code, err := lat.do(client, 0, "POST", base+"/systems", ss)
		if err != nil || code != http.StatusCreated {
			close(done)
			wg.Wait()
			if err == nil {
				err = fmt.Errorf("status %d", code)
			}
			return fmt.Errorf("spawning %s: %w", ss.ID, err)
		}
		spawnCount.Store(int64(i + 1))
	}

	for !allCompleted(host) {
		time.Sleep(5 * time.Millisecond)
	}
	elapsed := time.Since(start)
	close(done)
	wg.Wait()

	framesTotal := host.FramesStepped()
	frameLen := 20 * time.Millisecond // the threeconfig family's FrameLen
	fps := float64(framesTotal) / elapsed.Seconds()
	cores := runtime.GOMAXPROCS(0)
	durs, errs := lat.merge()
	rep := benchReport{
		Tenants:         tenants,
		FramesPerTenant: frames,
		FramesTotal:     framesTotal,
		ElapsedSec:      elapsed.Seconds(),
		AggregateFPS:    fps,
		FrameLenMS:      float64(frameLen) / float64(time.Millisecond),
		Cores:           cores,
		// aggregate fps / (frames one real-time system needs per second),
		// per core: sustained always-on tenants per core.
		SystemsPerCore: fps * frameLen.Seconds() / float64(cores),
		Shards:         host.Stats().Shards,
		Batch:          host.Stats().Batch,
		Ops:            len(durs),
		OpErrors:       errs,
		P50MS:          percentileMS(durs, 0.50),
		P95MS:          percentileMS(durs, 0.95),
		P99MS:          percentileMS(durs, 0.99),
	}
	if durabench {
		dura, err := runDurabench(out, fleet.Config{Shards: cfg.Shards, Batch: cfg.Batch}, 50, 400)
		if err != nil {
			return err
		}
		rep.Durability = dura
	}

	w, closeOut, err := cli.Output(outPath, out)
	if err != nil {
		return err
	}
	if err := cli.WriteJSON(w, rep); err != nil {
		closeOut()
		return err
	}
	if err := closeOut(); err != nil {
		return err
	}
	if outPath != "" && outPath != "-" {
		fmt.Fprintf(out, "fleetd loadgen: %.0f frames/s aggregate, %.1f systems/core, p99 %.2f ms -> %s\n",
			fps, rep.SystemsPerCore, rep.P99MS, outPath)
	}
	return nil
}

// allCompleted reports whether every tenant reached its frame budget.
func allCompleted(h *fleet.Host) bool {
	for _, st := range h.List() {
		if st.State == fleet.StateRunning {
			return false
		}
	}
	return true
}

// latencies collects per-worker op latencies without shared-slice contention
// (slot 0 belongs to the spawn loop and worker 0, which never overlap).
type latencies struct {
	mu    []sync.Mutex
	durs  [][]time.Duration
	fails []int
}

func newLatencies(workers int) *latencies {
	return &latencies{
		mu:    make([]sync.Mutex, workers),
		durs:  make([][]time.Duration, workers),
		fails: make([]int, workers),
	}
}

// do issues one timed control-plane request, draining and closing the body.
func (l *latencies) do(client *http.Client, slot int, method, url string, body any) (int, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		return 0, err
	}
	t0 := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	d := time.Since(t0)
	l.mu[slot].Lock()
	l.durs[slot] = append(l.durs[slot], d)
	l.mu[slot].Unlock()
	return resp.StatusCode, nil
}

func (l *latencies) fail(slot int) {
	l.mu[slot].Lock()
	l.fails[slot]++
	l.mu[slot].Unlock()
}

// merge gathers every worker's samples, sorted for percentile lookup.
func (l *latencies) merge() ([]time.Duration, int) {
	var all []time.Duration
	var fails int
	for i := range l.durs {
		l.mu[i].Lock()
		all = append(all, l.durs[i]...)
		fails += l.fails[i]
		l.mu[i].Unlock()
	}
	sort.Slice(all, func(a, b int) bool { return all[a] < all[b] })
	return all, fails
}

// percentileMS returns the p-quantile of sorted samples in milliseconds.
func percentileMS(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}
