// Command archlint statically enforces the repository's fail-stop and
// frame-determinism invariants on the Go source itself.
//
// The spec-level assurance layer (internal/statics) discharges the paper's
// proof obligations against the reconfiguration specification; archlint is
// the implementation-level counterpart, checking that the Go code cannot
// drift from the model those obligations were proved against. It runs four
// analyzers (see internal/lint): framedet, stableerr, nofreegoroutine and
// statusdiscipline.
//
// Usage:
//
//	archlint [-analyzers=a,b,...] [-json] [packages]
//
// Packages default to ./... relative to the working directory. The exit
// status is 0 when the tree is clean, 1 when any analyzer reported a
// diagnostic, and 2 on a loading or usage error. Individual findings are
// suppressed in source with `//lint:allow <analyzer> <reason>`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("archlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	analyzers := fs.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	list := fs.Bool("list", false, "list available analyzers and exit")
	outPath := fs.String("out", "", "write the diagnostics to this file instead of stdout")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: archlint [-analyzers=a,b,...] [-json] [-out file] [packages]\n\n")
		fmt.Fprintf(stderr, "Statically enforces the fail-stop and frame-determinism invariants.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stdout, closeOut, err := cli.Output(*outPath, stdout)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	defer func() {
		if cerr := closeOut(); cerr != nil {
			fmt.Fprintln(stderr, cerr)
		}
	}()
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	selected, err := lint.Select(*analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := lint.NewLoader("")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	diags, err := lint.Run(selected, pkgs)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			names := make(map[string]int)
			for _, d := range diags {
				names[d.Analyzer]++
			}
			var parts []string
			for _, a := range lint.Analyzers() {
				if n := names[a.Name]; n > 0 {
					parts = append(parts, fmt.Sprintf("%s: %d", a.Name, n))
				}
			}
			fmt.Fprintf(stderr, "archlint: %d finding(s) (%s)\n", len(diags), strings.Join(parts, ", "))
		}
		return 1
	}
	return 0
}
