// Command archlint statically enforces the repository's fail-stop and
// frame-determinism invariants on the Go source itself.
//
// The spec-level assurance layer (internal/statics) discharges the paper's
// proof obligations against the reconfiguration specification; archlint is
// the implementation-level counterpart, checking that the Go code cannot
// drift from the model those obligations were proved against. It runs six
// analyzers (see internal/lint): framedet, stableerr, nofreegoroutine,
// statusdiscipline, allocfree and epochguard. The last two are
// interprocedural: they build a conservative callgraph from the
// //lint:frame-entry roots and judge only code the frame hot path can reach.
//
// Usage:
//
//	archlint [-analyzers=a,b,...] [-json] [-baseline file] [packages]
//
// Packages default to ./... relative to the working directory. The exit
// status is 0 when the tree is clean, 1 when any analyzer reported a
// diagnostic, and 2 on a loading or usage error. Individual findings are
// suppressed in source with `//lint:allow <analyzer> <reason>`; the
// tolerated backlog lives in a committed baseline file (-baseline filters
// against it, -write-baseline regenerates it, and -allowances reports every
// in-source exception for audit).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cli"
	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("archlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	analyzers := fs.String("analyzers", "", "comma-separated analyzer names to run (default: all)")
	jsonOut := fs.Bool("json", false, "emit diagnostics as a JSON array")
	list := fs.Bool("list", false, "list available analyzers and exit")
	outPath := fs.String("out", "", "write the diagnostics to this file instead of stdout")
	baselinePath := fs.String("baseline", "", "filter findings against this baseline file; fail only on new ones")
	writeBaseline := fs.String("write-baseline", "", "write the current findings to this baseline file and exit 0")
	allowances := fs.Bool("allowances", false, "report every //lint:allow directive as JSON and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: archlint [-analyzers=a,b,...] [-json] [-baseline file] [-out file] [packages]\n\n")
		fmt.Fprintf(stderr, "Statically enforces the fail-stop and frame-determinism invariants.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	stdout, closeOut, err := cli.Output(*outPath, stdout)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	defer func() {
		if cerr := closeOut(); cerr != nil {
			fmt.Fprintln(stderr, cerr)
		}
	}()
	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-18s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	selected, err := lint.Select(*analyzers)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	loader := lint.NewLoader("")
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	// Baseline entries and allowance reports use module-root-relative paths
	// so the files are stable across checkouts.
	root, err := loader.ModuleDir()
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *allowances {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		all := lint.Allowances(pkgs, root)
		if all == nil {
			all = []lint.Allowance{}
		}
		if err := enc.Encode(all); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		return 0
	}
	diags, err := lint.Run(selected, pkgs)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	if *writeBaseline != "" {
		if err := os.WriteFile(*writeBaseline, lint.FormatBaseline(diags, root), 0o644); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		fmt.Fprintf(stderr, "archlint: wrote %d finding(s) to %s\n", len(diags), *writeBaseline)
		return 0
	}
	if *baselinePath != "" {
		data, err := os.ReadFile(*baselinePath)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		base, err := lint.ParseBaseline(data)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
		before := len(diags)
		diags = base.Filter(diags, root)
		fmt.Fprintf(stderr, "archlint: baseline %s tolerates %d finding(s); suppressed %d, %d new\n",
			*baselinePath, base.Size(), before-len(diags), len(diags))
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(stderr, err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Fprintln(stdout, d.String())
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			names := make(map[string]int)
			for _, d := range diags {
				names[d.Analyzer]++
			}
			var parts []string
			for _, a := range lint.Analyzers() {
				if n := names[a.Name]; n > 0 {
					parts = append(parts, fmt.Sprintf("%s: %d", a.Name, n))
				}
			}
			fmt.Fprintf(stderr, "archlint: %d finding(s) (%s)\n", len(diags), strings.Join(parts, ", "))
		}
		return 1
	}
	return 0
}
