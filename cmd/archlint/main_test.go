package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"framedet", "stableerr", "nofreegoroutine", "statusdiscipline"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q", name)
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-analyzers=nosuch"}, &out, &errb); code != 2 {
		t.Errorf("run(-analyzers=nosuch) = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr = %q, want unknown analyzer message", errb.String())
	}
}

func TestModuleIsClean(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"repro/..."}, &out, &errb); code != 0 {
		t.Errorf("run(repro/...) = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean tree should print nothing, got:\n%s", out.String())
	}
}

// chdirModule builds a throwaway module with one violation and runs archlint
// inside it, so the findings path (exit 1, text and JSON rendering) is
// exercised without planting a violation in the real tree.
func chdirModule(t *testing.T) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpfix\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package core

import "time"

// Stamp is frame-nondeterministic on purpose.
func Stamp() int64 { return time.Now().UnixNano() }
`
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

func TestFindingsExitOne(t *testing.T) {
	chdirModule(t)
	var out, errb bytes.Buffer
	if code := run([]string{"./..."}, &out, &errb); code != 1 {
		t.Fatalf("run on dirty module = %d, want 1\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "[framedet]") || !strings.Contains(out.String(), "time.Now") {
		t.Errorf("stdout = %q, want a framedet time.Now finding", out.String())
	}
	if !strings.Contains(errb.String(), "finding(s)") {
		t.Errorf("stderr = %q, want a summary line", errb.String())
	}
}

func TestJSONOutput(t *testing.T) {
	chdirModule(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("run -json on dirty module = %d, want 1\nstderr: %s", code, errb.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("stdout is not a JSON diagnostic array: %v\n%s", err, out.String())
	}
	if len(diags) != 1 || diags[0].Analyzer != "framedet" || diags[0].Line == 0 {
		t.Errorf("diagnostics = %+v, want one framedet finding with a position", diags)
	}
}

// TestSingleAnalyzerSelection checks that -analyzers narrows the run: the
// dirty module is clean under stableerr alone.
func TestSingleAnalyzerSelection(t *testing.T) {
	chdirModule(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-analyzers=stableerr", "./..."}, &out, &errb); code != 0 {
		t.Errorf("run -analyzers=stableerr = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}
