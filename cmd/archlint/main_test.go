package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

func TestListAnalyzers(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("run(-list) = %d, stderr: %s", code, errb.String())
	}
	for _, name := range []string{"framedet", "stableerr", "nofreegoroutine", "statusdiscipline", "allocfree", "epochguard"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q", name)
		}
	}
}

func TestUnknownAnalyzerIsUsageError(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-analyzers=nosuch"}, &out, &errb); code != 2 {
		t.Errorf("run(-analyzers=nosuch) = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr = %q, want unknown analyzer message", errb.String())
	}
}

func TestModuleIsClean(t *testing.T) {
	var out, errb bytes.Buffer
	baseline := filepath.Join("..", "..", "lint", "allocfree.baseline")
	if code := run([]string{"-baseline", baseline, "repro/..."}, &out, &errb); code != 0 {
		t.Errorf("run(-baseline repro/...) = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("clean tree should print nothing, got:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "0 new") {
		t.Errorf("stderr = %q, want a baseline summary reporting 0 new findings", errb.String())
	}
}

// chdirModule builds a throwaway module with one violation and runs archlint
// inside it, so the findings path (exit 1, text and JSON rendering) is
// exercised without planting a violation in the real tree.
func chdirModule(t *testing.T) {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module tmpfix\n\ngo 1.22\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package core

import "time"

// Stamp is frame-nondeterministic on purpose.
func Stamp() int64 { return time.Now().UnixNano() }
`
	if err := os.WriteFile(filepath.Join(dir, "bad.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := os.Chdir(old); err != nil {
			t.Fatal(err)
		}
	})
}

func TestFindingsExitOne(t *testing.T) {
	chdirModule(t)
	var out, errb bytes.Buffer
	if code := run([]string{"./..."}, &out, &errb); code != 1 {
		t.Fatalf("run on dirty module = %d, want 1\nstderr: %s", code, errb.String())
	}
	if !strings.Contains(out.String(), "[framedet]") || !strings.Contains(out.String(), "time.Now") {
		t.Errorf("stdout = %q, want a framedet time.Now finding", out.String())
	}
	if !strings.Contains(errb.String(), "finding(s)") {
		t.Errorf("stderr = %q, want a summary line", errb.String())
	}
}

func TestJSONOutput(t *testing.T) {
	chdirModule(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-json", "./..."}, &out, &errb); code != 1 {
		t.Fatalf("run -json on dirty module = %d, want 1\nstderr: %s", code, errb.String())
	}
	var diags []lint.Diagnostic
	if err := json.Unmarshal(out.Bytes(), &diags); err != nil {
		t.Fatalf("stdout is not a JSON diagnostic array: %v\n%s", err, out.String())
	}
	if len(diags) != 1 || diags[0].Analyzer != "framedet" || diags[0].Line == 0 {
		t.Errorf("diagnostics = %+v, want one framedet finding with a position", diags)
	}
}

// TestBaselineRoundTrip drives the backlog workflow end to end in the dirty
// module: -write-baseline captures the findings, a gated rerun passes with 0
// new, and emptying the baseline trips the gate again.
func TestBaselineRoundTrip(t *testing.T) {
	chdirModule(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-write-baseline", "base.txt", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("run -write-baseline = %d, want 0\nstderr: %s", code, errb.String())
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", "base.txt", "./..."}, &out, &errb); code != 0 {
		t.Fatalf("gated run against a fresh baseline = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
	if !strings.Contains(errb.String(), "0 new") {
		t.Errorf("stderr = %q, want 0 new findings", errb.String())
	}
	if err := os.WriteFile("base.txt", []byte("# emptied\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out.Reset()
	errb.Reset()
	if code := run([]string{"-baseline", "base.txt", "./..."}, &out, &errb); code != 1 {
		t.Errorf("gated run against an emptied baseline = %d, want 1", code)
	}
}

// TestAllowancesReport checks the audit report: every //lint:allow in the
// real tree is enumerated with its analyzer and reason, none inert.
func TestAllowancesReport(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-allowances", "repro/..."}, &out, &errb); code != 0 {
		t.Fatalf("run -allowances = %d, want 0\nstderr: %s", code, errb.String())
	}
	var allows []lint.Allowance
	if err := json.Unmarshal(out.Bytes(), &allows); err != nil {
		t.Fatalf("stdout is not a JSON allowance array: %v\n%s", err, out.String())
	}
	if len(allows) == 0 {
		t.Fatal("the tree carries //lint:allow directives, report is empty")
	}
	for _, a := range allows {
		if a.File == "" || a.Line == 0 || a.Analyzer == "" {
			t.Errorf("allowance missing location or analyzer: %+v", a)
		}
		if a.Inert {
			t.Errorf("inert (reason-less) allowance in tree at %s:%d: suppresses nothing, delete or justify it", a.File, a.Line)
		}
	}
}

// TestSingleAnalyzerSelection checks that -analyzers narrows the run: the
// dirty module is clean under stableerr alone.
func TestSingleAnalyzerSelection(t *testing.T) {
	chdirModule(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-analyzers=stableerr", "./..."}, &out, &errb); code != 0 {
		t.Errorf("run -analyzers=stableerr = %d, want 0\nstdout: %s\nstderr: %s", code, out.String(), errb.String())
	}
}
