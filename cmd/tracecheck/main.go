// Command tracecheck verifies a recorded system trace against the four
// formal reconfiguration properties of the paper's Table 2 (SP1-SP4).
//
// Usage:
//
//	tracecheck -trace run.json -spec system.json
//	tracecheck -trace run.json -avionics
//
// The exit status is 0 when every property holds over every reconfiguration
// in the trace and 1 otherwise.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/avionics"
	"repro/internal/cli"
	"repro/internal/spec"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tracecheck:", err)
		os.Exit(1)
	}
}

var errViolations = errors.New("property violations found")

// report is the -json output: the trace digest the text mode prints, plus
// every SP1-SP4 violation.
type report struct {
	System            string                  `json:"system"`
	Cycles            int64                   `json:"cycles"`
	Reconfigs         []trace.Reconfiguration `json:"reconfigs"`
	Open              *trace.Reconfiguration  `json:"open,omitempty"`
	RestrictionFrames int64                   `json:"restriction_frames"`
	MaxRestrictionRun int64                   `json:"max_restriction_run"`
	Violations        []trace.Violation       `json:"violations"`
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("tracecheck", flag.ContinueOnError)
	tracePath := fs.String("trace", "", "path to a recorded trace (JSON)")
	specPath := fs.String("spec", "", "path to the reconfiguration specification (JSON)")
	useAvionics := fs.Bool("avionics", false, "check against the built-in avionics specification")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	outPath := fs.String("out", "", "write the report to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tracePath == "" {
		return errors.New("provide -trace <file>")
	}
	out, closeOut, err := cli.Output(*outPath, out)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeOut(); err == nil {
			err = cerr
		}
	}()

	var rs *spec.ReconfigSpec
	switch {
	case *useAvionics:
		rs = avionics.Spec()
	case *specPath != "":
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		rs = new(spec.ReconfigSpec)
		if err := json.Unmarshal(data, rs); err != nil {
			return fmt.Errorf("parsing %s: %w", *specPath, err)
		}
	default:
		return errors.New("provide -spec <file> or -avionics")
	}

	data, err := os.ReadFile(*tracePath)
	if err != nil {
		return err
	}
	var tr trace.Trace
	if err := json.Unmarshal(data, &tr); err != nil {
		return fmt.Errorf("parsing %s: %w", *tracePath, err)
	}

	if *asJSON {
		rep := report{
			System:            tr.System,
			Cycles:            tr.Len(),
			Reconfigs:         tr.Reconfigs(),
			RestrictionFrames: tr.RestrictionFrames(),
			MaxRestrictionRun: tr.MaxRestrictionRun(),
			Violations:        []trace.Violation{},
		}
		if open, ok := tr.OpenReconfig(); ok {
			rep.Open = &open
		}
		rep.Violations = append(rep.Violations, trace.CheckAll(&tr, rs)...)
		if err := cli.WriteJSON(out, rep); err != nil {
			return err
		}
		if len(rep.Violations) > 0 {
			return errViolations
		}
		return nil
	}

	fmt.Fprintf(out, "trace: %s, %d cycles, frame length %v\n", tr.System, tr.Len(), tr.FrameLen)
	rcs := tr.Reconfigs()
	fmt.Fprintf(out, "reconfigurations: %d\n", len(rcs))
	for _, r := range rcs {
		fmt.Fprintf(out, "  [%d,%d] %s -> %s (%d frames)\n", r.StartC, r.EndC, r.From, r.To, r.Frames())
	}
	if open, ok := tr.OpenReconfig(); ok {
		fmt.Fprintf(out, "  open window at end of trace: [%d,%d] from %s\n", open.StartC, open.EndC, open.From)
	}
	fmt.Fprintf(out, "restriction: %d frames total, longest run %d\n",
		tr.RestrictionFrames(), tr.MaxRestrictionRun())

	violations := trace.CheckAll(&tr, rs)
	if len(violations) == 0 {
		fmt.Fprintln(out, "SP1-SP4: all properties hold")
		return nil
	}
	fmt.Fprintf(out, "SP1-SP4: %d violation(s)\n", len(violations))
	for _, v := range violations {
		fmt.Fprintf(out, "  %s\n", v)
	}
	return errViolations
}
