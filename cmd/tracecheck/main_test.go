package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/avionics"
	"repro/internal/envmon"
	"repro/internal/spec"
	"repro/internal/trace"
)

// writeScenarioTrace runs the alternator scenario and writes its trace.
func writeScenarioTrace(t *testing.T) string {
	t.Helper()
	sc, err := avionics.NewScenario(avionics.ScenarioOptions{
		Initial:     avionics.AircraftState{AltFt: 5000, AirspeedKts: 100},
		Script:      []envmon.Event{{Frame: 20, Factor: avionics.FactorAlt1, Value: avionics.AltFailed}},
		DwellFrames: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if err := sc.Sys.Run(60); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(sc.Sys.Trace())
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestCleanTracePasses(t *testing.T) {
	path := writeScenarioTrace(t)
	var out bytes.Buffer
	if err := run([]string{"-trace", path, "-avionics"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"reconfigurations: 1", "all properties hold"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q:\n%s", want, text)
		}
	}
}

func TestViolatingTraceFails(t *testing.T) {
	// A hand-made trace whose window exceeds every declared bound and
	// whose end state lacks a precondition.
	tr := &trace.Trace{System: "bad", FrameLen: time.Millisecond}
	statuses := []trace.ReconfStatus{trace.StatusNormal, trace.StatusInterrupted}
	for i := 0; i < 15; i++ {
		statuses = append(statuses, trace.StatusHalting)
	}
	statuses = append(statuses, trace.StatusNormal)
	for c, st := range statuses {
		preOK := st != trace.StatusNormal || c == 0
		err := tr.Append(trace.SysState{
			Cycle:  int64(c),
			Config: avionics.CfgFull,
			Env:    avionics.EnvPowerReduced,
			Apps: map[spec.AppID]trace.AppState{
				avionics.AppAutopilot: {Status: st, Spec: "ap-full", PreOK: preOK},
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	err = run([]string{"-trace", path, "-avionics"}, &out)
	if !errors.Is(err, errViolations) {
		t.Fatalf("err = %v, want errViolations\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "SP") {
		t.Errorf("violations not printed:\n%s", out.String())
	}
}

func TestSpecFromFile(t *testing.T) {
	// The avionics spec via -spec file must behave like -avionics.
	specData, err := json.Marshal(avionics.Spec())
	if err != nil {
		t.Fatal(err)
	}
	specPath := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(specPath, specData, 0o644); err != nil {
		t.Fatal(err)
	}
	tracePath := writeScenarioTrace(t)
	var out bytes.Buffer
	if err := run([]string{"-trace", tracePath, "-spec", specPath}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
}

func TestArgumentErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing -trace accepted")
	}
	if err := run([]string{"-trace", "/nonexistent.json"}, &out); err == nil {
		t.Error("missing spec source accepted")
	}
	if err := run([]string{"-trace", "/nonexistent.json", "-avionics"}, &out); err == nil {
		t.Error("missing trace file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("не json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-trace", bad, "-avionics"}, &out); err == nil {
		t.Error("malformed trace accepted")
	}
}
