// Command flightrec reads a flight-recorder journal — the black-box event
// ring recovered from a fail-stop system's stable storage (faultsim
// -ring-out, or telemetry.WriteJournal) — and renders it for post-mortem
// analysis.
//
// Usage:
//
//	flightrec -ring ring.jsonl                       # dump every event
//	flightrec -ring ring.jsonl -app fcs -since-frame 40
//	flightrec -ring ring.jsonl -phase prepare
//	flightrec -ring ring.jsonl -summary -canonical   # timeline + SP checks
//	flightrec -ring ring.jsonl -summary -spec system.json
//	flightrec -ring ring.jsonl -trace                # causal-trace waterfalls
//	flightrec -ring ring.jsonl -trace -trace-id 00000000075bcd15 -json
//
// The default mode dumps the (filtered) events one per line. -summary
// assembles the reconfiguration timeline — each window's halt, prepare and
// initialize phases with their frame budgets against the specification's
// transition bound — plus the fault-handling tallies, then reconstructs the
// system trace from the ring's frame-state samples and reruns the SP1-SP4
// checkers over it. SP1 and SP4 need only the trace; SP2 and SP3 also need
// the specification (-spec, -canonical for the built-in three-configuration
// system, or -avionics). The exit status is 1 if any checked property is
// violated, so a recovered black box re-certifies the run it survived.
//
// -trace assembles the ring's causal spans into per-reconfiguration
// waterfalls: signal detection, the kernel's decision, each transition
// phase and the window's completion, with frames used measured against the
// declared transition bound. -trace -json renders the exact bytes the live
// telemetry plane serves on /traces (or, with -trace-id, /trace/<id>).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"time"

	"repro/internal/avionics"
	"repro/internal/cli"
	"repro/internal/spec"
	"repro/internal/spectest"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flightrec:", err)
		os.Exit(1)
	}
}

var errViolations = errors.New("property violations found")

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("flightrec", flag.ContinueOnError)
	ringPath := fs.String("ring", "", "path to a flight-recorder journal (JSONL)")
	app := fs.String("app", "", "dump only events for this application")
	phase := fs.String("phase", "", "dump only events with this phase (halt, prepare, initialize, schedule, window, ...)")
	sinceFrame := fs.Int64("since-frame", -1, "dump only events at or after this frame")
	summary := fs.Bool("summary", false, "print the reconfiguration timeline and rerun the SP checkers")
	traceMode := fs.Bool("trace", false, "render the causal reconfiguration traces (waterfalls) assembled from the ring")
	traceID := fs.String("trace-id", "", "with -trace, render only the trace with this id (16 hex digits)")
	specPath := fs.String("spec", "", "path to the reconfiguration specification (JSON), for SP2/SP3")
	canonical := fs.Bool("canonical", false, "check against the built-in three-configuration specification")
	useAvionics := fs.Bool("avionics", false, "check against the built-in avionics specification")
	asJSON := fs.Bool("json", false, "emit the events (or the -summary report) as JSON")
	outPath := fs.String("out", "", "write the output to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ringPath == "" {
		return errors.New("provide -ring <file>")
	}
	out, closeOut, err := cli.Output(*outPath, out)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeOut(); err == nil {
			err = cerr
		}
	}()

	f, err := os.Open(*ringPath)
	if err != nil {
		return err
	}
	events, err := telemetry.ReadJournal(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("reading %s: %w", *ringPath, err)
	}
	if len(events) == 0 {
		return fmt.Errorf("%s: empty journal", *ringPath)
	}

	var rs *spec.ReconfigSpec
	switch {
	case *useAvionics:
		rs = avionics.Spec()
	case *canonical:
		rs = spectest.ThreeConfig()
	case *specPath != "":
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		rs = new(spec.ReconfigSpec)
		if err := json.Unmarshal(data, rs); err != nil {
			return fmt.Errorf("parsing %s: %w", *specPath, err)
		}
	}

	if *traceMode {
		return renderTraces(out, *asJSON, events, *traceID)
	}
	if !*summary {
		filtered := filter(events, *app, *phase, *sinceFrame)
		if *asJSON {
			return cli.WriteJSON(out, filtered)
		}
		for _, e := range filtered {
			fmt.Fprintln(out, e.String())
		}
		return nil
	}
	return summarize(out, *asJSON, events, rs)
}

// filter selects the events the dump flags ask for.
func filter(events []telemetry.Event, app, phase string, sinceFrame int64) []telemetry.Event {
	kept := make([]telemetry.Event, 0, len(events))
	for _, e := range events {
		if app != "" && e.App != app {
			continue
		}
		if phase != "" && e.Phase != phase {
			continue
		}
		if sinceFrame >= 0 && e.Frame < sinceFrame {
			continue
		}
		kept = append(kept, e)
	}
	return kept
}

// renderTraces renders the ring's assembled causal traces. With an id it
// renders exactly one; -json emits the same bytes the live telemetry
// plane's /traces and /trace/<id> endpoints serve (both sides render
// telemetry.BuildTraceReport through cli.WriteJSON), so CI can diff the
// HTTP body against this output.
func renderTraces(out io.Writer, asJSON bool, events []telemetry.Event, id string) error {
	var reports []telemetry.TraceReport
	for _, tv := range telemetry.AssembleTraces(events) {
		if tv.ID != 0 {
			reports = append(reports, telemetry.BuildTraceReport(tv))
		}
	}
	if id != "" {
		want, err := telemetry.ParseTraceID(id)
		if err != nil {
			return err
		}
		for _, r := range reports {
			if r.ID != telemetry.TraceIDString(want) {
				continue
			}
			if asJSON {
				return cli.WriteJSON(out, r)
			}
			waterfall(out, r)
			return nil
		}
		return fmt.Errorf("trace %s not found in ring (%d trace(s) assembled)", id, len(reports))
	}
	if asJSON {
		return cli.WriteJSON(out, reports)
	}
	if len(reports) == 0 {
		fmt.Fprintln(out, "no causal traces in ring (tracing disabled, or no reconfiguration spans recorded)")
		return nil
	}
	for i, r := range reports {
		if i > 0 {
			fmt.Fprintln(out)
		}
		waterfall(out, r)
	}
	return nil
}

// waterfall prints one trace's per-phase breakdown: each span's frame
// window drawn against the whole reconfiguration, with the realized window
// measured against the declared transition bound.
func waterfall(out io.Writer, r telemetry.TraceReport) {
	fmt.Fprintf(out, "trace %s seq %d: %s -> %s\n", r.ID, r.Seq, r.From, r.Config)
	switch {
	case r.Complete && r.Bound > 0:
		fmt.Fprintf(out, "  window f%d-f%d: %d frame(s) used of bound %d (margin %d)\n",
			r.Start, r.End, r.Window, r.Bound, r.Margin)
	case r.Complete:
		fmt.Fprintf(out, "  window f%d-f%d: %d frame(s), no declared bound\n", r.Start, r.End, r.Window)
	case r.Start >= 0:
		fmt.Fprintf(out, "  window open at f%d (cut short by a halt or the end of the ring)\n", r.Start)
	default:
		fmt.Fprintln(out, "  no root span in ring (trace start evicted)")
	}

	base, last := int64(math.MaxInt64), int64(-1)
	for _, s := range r.Spans {
		if s.Start >= 0 && s.Start < base {
			base = s.Start
		}
		if s.End > last {
			last = s.End
		}
		if s.Start > last {
			last = s.Start
		}
	}
	if base == math.MaxInt64 || last < base {
		return
	}
	// One bar character per frame, coarsened when the trace is wide.
	perChar := int64(1)
	if w := last - base + 1; w > 64 {
		perChar = (w + 63) / 64
	}
	width := int((last-base)/perChar) + 1
	for _, s := range r.Spans {
		loc := fmt.Sprintf("f%d-f%d", s.Start, s.End)
		used := fmt.Sprintf("%d frame(s)", s.Frames)
		var bar string
		switch {
		case s.Start < 0:
			loc = fmt.Sprintf("?-f%d", s.End)
			used = "start evicted"
		case s.End < 0:
			loc = fmt.Sprintf("f%d-", s.Start)
			used = "open"
			bar = strings.Repeat(" ", int((s.Start-base)/perChar)) + ">"
		default:
			pad := int((s.Start - base) / perChar)
			bar = strings.Repeat(" ", pad) + strings.Repeat("#", int((s.End-base)/perChar)-pad+1)
		}
		detail := s.Detail
		if detail == "" && s.Config != "" {
			detail = s.Config
			if s.From != "" {
				detail = s.From + " -> " + s.Config
			}
		}
		fmt.Fprintf(out, "  %-10s %-13s %-14s |%-*s| %s\n", s.Name, loc, used, width, bar, detail)
	}
}

// span renders one protocol phase's frame window.
func span(name string, p telemetry.PhaseSpan) string {
	if p.Start < 0 {
		return fmt.Sprintf("      %-10s (not scheduled)", name)
	}
	return fmt.Sprintf("      %-10s f%d-f%d (%d frame(s))", name, p.Start, p.End, p.Frames())
}

// summaryReport is the -summary -json output: the assembled timeline plus
// the rerun SP checks over the reconstructed trace.
type summaryReport struct {
	Summary         telemetry.Summary `json:"summary"`
	WindowQuantiles *quantileRow      `json:"window_quantiles,omitempty"`
	SignalQuantiles *quantileRow      `json:"signal_latency_quantiles,omitempty"`
	Checked         string            `json:"checked"`
	Cycles          int64             `json:"cycles"`
	BaseFrame       int64             `json:"base_frame"`
	Violations      []trace.Violation `json:"violations"`
}

// quantileRow reads a latency histogram at the standard percentiles.
type quantileRow struct {
	P50 int64 `json:"p50"`
	P95 int64 `json:"p95"`
	P99 int64 `json:"p99"`
}

func quantilesOf(h telemetry.HistogramSnapshot) *quantileRow {
	if h.Count == 0 {
		return nil
	}
	return &quantileRow{P50: h.Quantile(0.50), P95: h.Quantile(0.95), P99: h.Quantile(0.99)}
}

// ringHistograms rebuilds the recovery-latency histograms from the ring's
// assembled reconfiguration windows — the same quantities the live
// registry tracks as scram/window_frames and scram/signal_latency_frames,
// recomputed post mortem from the black box alone.
func ringHistograms(s telemetry.Summary) (window, signal telemetry.HistogramSnapshot) {
	reg := telemetry.NewRegistry()
	wh := reg.Histogram("scram/window_frames")
	sh := reg.Histogram("scram/signal_latency_frames")
	for _, r := range s.Reconfigs {
		if r.Complete() {
			wh.Observe(r.WindowFrames)
		}
		if r.SignalLatency >= 0 {
			sh.Observe(r.SignalLatency)
		}
	}
	return wh.Snapshot(), sh.Snapshot()
}

// summarize prints the flight-recorder report and reruns the SP checkers
// over the trace reconstructed from the ring.
func summarize(out io.Writer, asJSON bool, events []telemetry.Event, rs *spec.ReconfigSpec) error {
	s := telemetry.Summarize(events)
	windowHist, signalHist := ringHistograms(s)

	if asJSON {
		rep := summaryReport{Summary: s, Violations: []trace.Violation{}}
		rep.WindowQuantiles = quantilesOf(windowHist)
		rep.SignalQuantiles = quantilesOf(signalHist)
		frameLen := time.Millisecond
		if rs != nil {
			frameLen = rs.FrameLen
		}
		tr, base, err := telemetry.ReconstructTrace("flightrec", frameLen, events)
		if err != nil {
			return fmt.Errorf("reconstructing trace: %w", err)
		}
		rep.Cycles, rep.BaseFrame = tr.Len(), base
		rep.Checked = "SP1, SP4"
		rep.Violations = append(rep.Violations, trace.CheckSP1(tr)...)
		rep.Violations = append(rep.Violations, trace.CheckSP4(tr)...)
		if rs != nil {
			rep.Checked = "SP1-SP4"
			rep.Violations = append(rep.Violations, trace.CheckSP2(tr, rs)...)
			rep.Violations = append(rep.Violations, trace.CheckSP3(tr, rs)...)
		}
		if err := cli.WriteJSON(out, rep); err != nil {
			return err
		}
		if len(rep.Violations) > 0 {
			return errViolations
		}
		return nil
	}

	fmt.Fprintf(out, "flight recorder: %d events, frames %d-%d", len(events), s.FirstFrame, s.LastFrame)
	if s.DroppedEvents > 0 {
		fmt.Fprintf(out, " (%d evicted before ring start)", s.DroppedEvents)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "signals %d, deferred %d, retargets %d, takeovers %d\n",
		s.Signals, s.Deferred, s.Retargets, s.Takeovers)
	fmt.Fprintf(out, "storage: %d repairs, %d commit rescues, %d unrecoverable; bus faults: %d\n",
		s.StorageRepairs, s.StorageRescues, s.StorageUnrecoverable, s.BusFaults)
	if len(s.ProcHalts) > 0 {
		fmt.Fprintln(out, "processor halts:")
		for _, e := range s.ProcHalts {
			detail := e.Detail
			if detail == "" {
				detail = "fail-stop halt"
			}
			fmt.Fprintf(out, "  f%-4d %-4s %s\n", e.Frame, e.Host, detail)
		}
	}

	fmt.Fprintf(out, "reconfigurations: %d\n", len(s.Reconfigs))
	for i, r := range s.Reconfigs {
		flags := ""
		if r.Retargeted {
			flags += " [retargeted]"
		}
		if r.Chained {
			flags += " [chained]"
		}
		lat := ""
		if r.SignalLatency >= 0 {
			lat = fmt.Sprintf(", signal latency %d frame(s)", r.SignalLatency)
		}
		fmt.Fprintf(out, "  #%d seq %d %s -> %s: trigger f%d%s%s\n",
			i+1, r.Seq, r.Source, r.Target, r.TriggerFrame, lat, flags)
		fmt.Fprintln(out, span("halt", r.Halt))
		fmt.Fprintln(out, span("prepare", r.Prepare))
		fmt.Fprintln(out, span("initialize", r.Init))
		if !r.Complete() {
			fmt.Fprintln(out, "      open at end of ring (incomplete window)")
			continue
		}
		bound := "no declared bound"
		if r.BoundFrames > 0 {
			bound = fmt.Sprintf("bound %d, margin %d", r.BoundFrames, r.MarginFrames)
		}
		fmt.Fprintf(out, "      complete   f%d, window %d frame(s), %s\n", r.CompleteFrame, r.WindowFrames, bound)
	}
	if q := quantilesOf(windowHist); q != nil {
		fmt.Fprintf(out, "window frames: p50 %d, p95 %d, p99 %d (%d window(s))\n", q.P50, q.P95, q.P99, windowHist.Count)
	}
	if q := quantilesOf(signalHist); q != nil {
		fmt.Fprintf(out, "signal latency frames: p50 %d, p95 %d, p99 %d (%d signal(s))\n", q.P50, q.P95, q.P99, signalHist.Count)
	}

	frameLen := time.Millisecond
	if rs != nil {
		frameLen = rs.FrameLen
	}
	tr, base, err := telemetry.ReconstructTrace("flightrec", frameLen, events)
	if err != nil {
		return fmt.Errorf("reconstructing trace: %w", err)
	}

	var violations []trace.Violation
	checked := "SP1, SP4"
	violations = append(violations, trace.CheckSP1(tr)...)
	violations = append(violations, trace.CheckSP4(tr)...)
	if rs != nil {
		checked = "SP1-SP4"
		violations = append(violations, trace.CheckSP2(tr, rs)...)
		violations = append(violations, trace.CheckSP3(tr, rs)...)
	}
	if len(violations) == 0 {
		fmt.Fprintf(out, "%s: all properties hold over the reconstructed trace (%d cycles, base frame %d)\n",
			checked, tr.Len(), base)
		if rs == nil {
			fmt.Fprintln(out, "(no specification given: pass -spec, -canonical or -avionics to also check SP2/SP3)")
		}
		return nil
	}
	fmt.Fprintf(out, "%s: %d violation(s) over the reconstructed trace\n", checked, len(violations))
	for _, v := range violations {
		fmt.Fprintf(out, "  %s\n", v)
	}
	return errViolations
}
