// Command flightrec reads a flight-recorder journal — the black-box event
// ring recovered from a fail-stop system's stable storage (faultsim
// -ring-out, or telemetry.WriteJournal) — and renders it for post-mortem
// analysis.
//
// Usage:
//
//	flightrec -ring ring.jsonl                       # dump every event
//	flightrec -ring ring.jsonl -app fcs -since-frame 40
//	flightrec -ring ring.jsonl -phase prepare
//	flightrec -ring ring.jsonl -summary -canonical   # timeline + SP checks
//	flightrec -ring ring.jsonl -summary -spec system.json
//
// The default mode dumps the (filtered) events one per line. -summary
// assembles the reconfiguration timeline — each window's halt, prepare and
// initialize phases with their frame budgets against the specification's
// transition bound — plus the fault-handling tallies, then reconstructs the
// system trace from the ring's frame-state samples and reruns the SP1-SP4
// checkers over it. SP1 and SP4 need only the trace; SP2 and SP3 also need
// the specification (-spec, -canonical for the built-in three-configuration
// system, or -avionics). The exit status is 1 if any checked property is
// violated, so a recovered black box re-certifies the run it survived.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/avionics"
	"repro/internal/cli"
	"repro/internal/spec"
	"repro/internal/spectest"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "flightrec:", err)
		os.Exit(1)
	}
}

var errViolations = errors.New("property violations found")

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("flightrec", flag.ContinueOnError)
	ringPath := fs.String("ring", "", "path to a flight-recorder journal (JSONL)")
	app := fs.String("app", "", "dump only events for this application")
	phase := fs.String("phase", "", "dump only events with this phase (halt, prepare, initialize, schedule, window, ...)")
	sinceFrame := fs.Int64("since-frame", -1, "dump only events at or after this frame")
	summary := fs.Bool("summary", false, "print the reconfiguration timeline and rerun the SP checkers")
	specPath := fs.String("spec", "", "path to the reconfiguration specification (JSON), for SP2/SP3")
	canonical := fs.Bool("canonical", false, "check against the built-in three-configuration specification")
	useAvionics := fs.Bool("avionics", false, "check against the built-in avionics specification")
	asJSON := fs.Bool("json", false, "emit the events (or the -summary report) as JSON")
	outPath := fs.String("out", "", "write the output to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *ringPath == "" {
		return errors.New("provide -ring <file>")
	}
	out, closeOut, err := cli.Output(*outPath, out)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeOut(); err == nil {
			err = cerr
		}
	}()

	f, err := os.Open(*ringPath)
	if err != nil {
		return err
	}
	events, err := telemetry.ReadJournal(f)
	f.Close()
	if err != nil {
		return fmt.Errorf("reading %s: %w", *ringPath, err)
	}
	if len(events) == 0 {
		return fmt.Errorf("%s: empty journal", *ringPath)
	}

	var rs *spec.ReconfigSpec
	switch {
	case *useAvionics:
		rs = avionics.Spec()
	case *canonical:
		rs = spectest.ThreeConfig()
	case *specPath != "":
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		rs = new(spec.ReconfigSpec)
		if err := json.Unmarshal(data, rs); err != nil {
			return fmt.Errorf("parsing %s: %w", *specPath, err)
		}
	}

	if !*summary {
		filtered := filter(events, *app, *phase, *sinceFrame)
		if *asJSON {
			return cli.WriteJSON(out, filtered)
		}
		for _, e := range filtered {
			fmt.Fprintln(out, e.String())
		}
		return nil
	}
	return summarize(out, *asJSON, events, rs)
}

// filter selects the events the dump flags ask for.
func filter(events []telemetry.Event, app, phase string, sinceFrame int64) []telemetry.Event {
	kept := make([]telemetry.Event, 0, len(events))
	for _, e := range events {
		if app != "" && e.App != app {
			continue
		}
		if phase != "" && e.Phase != phase {
			continue
		}
		if sinceFrame >= 0 && e.Frame < sinceFrame {
			continue
		}
		kept = append(kept, e)
	}
	return kept
}

// span renders one protocol phase's frame window.
func span(name string, p telemetry.PhaseSpan) string {
	if p.Start < 0 {
		return fmt.Sprintf("      %-10s (not scheduled)", name)
	}
	return fmt.Sprintf("      %-10s f%d-f%d (%d frame(s))", name, p.Start, p.End, p.Frames())
}

// summaryReport is the -summary -json output: the assembled timeline plus
// the rerun SP checks over the reconstructed trace.
type summaryReport struct {
	Summary    telemetry.Summary `json:"summary"`
	Checked    string            `json:"checked"`
	Cycles     int64             `json:"cycles"`
	BaseFrame  int64             `json:"base_frame"`
	Violations []trace.Violation `json:"violations"`
}

// summarize prints the flight-recorder report and reruns the SP checkers
// over the trace reconstructed from the ring.
func summarize(out io.Writer, asJSON bool, events []telemetry.Event, rs *spec.ReconfigSpec) error {
	s := telemetry.Summarize(events)

	if asJSON {
		rep := summaryReport{Summary: s, Violations: []trace.Violation{}}
		frameLen := time.Millisecond
		if rs != nil {
			frameLen = rs.FrameLen
		}
		tr, base, err := telemetry.ReconstructTrace("flightrec", frameLen, events)
		if err != nil {
			return fmt.Errorf("reconstructing trace: %w", err)
		}
		rep.Cycles, rep.BaseFrame = tr.Len(), base
		rep.Checked = "SP1, SP4"
		rep.Violations = append(rep.Violations, trace.CheckSP1(tr)...)
		rep.Violations = append(rep.Violations, trace.CheckSP4(tr)...)
		if rs != nil {
			rep.Checked = "SP1-SP4"
			rep.Violations = append(rep.Violations, trace.CheckSP2(tr, rs)...)
			rep.Violations = append(rep.Violations, trace.CheckSP3(tr, rs)...)
		}
		if err := cli.WriteJSON(out, rep); err != nil {
			return err
		}
		if len(rep.Violations) > 0 {
			return errViolations
		}
		return nil
	}

	fmt.Fprintf(out, "flight recorder: %d events, frames %d-%d", len(events), s.FirstFrame, s.LastFrame)
	if s.DroppedEvents > 0 {
		fmt.Fprintf(out, " (%d evicted before ring start)", s.DroppedEvents)
	}
	fmt.Fprintln(out)
	fmt.Fprintf(out, "signals %d, deferred %d, retargets %d, takeovers %d\n",
		s.Signals, s.Deferred, s.Retargets, s.Takeovers)
	fmt.Fprintf(out, "storage: %d repairs, %d commit rescues, %d unrecoverable; bus faults: %d\n",
		s.StorageRepairs, s.StorageRescues, s.StorageUnrecoverable, s.BusFaults)
	if len(s.ProcHalts) > 0 {
		fmt.Fprintln(out, "processor halts:")
		for _, e := range s.ProcHalts {
			detail := e.Detail
			if detail == "" {
				detail = "fail-stop halt"
			}
			fmt.Fprintf(out, "  f%-4d %-4s %s\n", e.Frame, e.Host, detail)
		}
	}

	fmt.Fprintf(out, "reconfigurations: %d\n", len(s.Reconfigs))
	for i, r := range s.Reconfigs {
		flags := ""
		if r.Retargeted {
			flags += " [retargeted]"
		}
		if r.Chained {
			flags += " [chained]"
		}
		lat := ""
		if r.SignalLatency >= 0 {
			lat = fmt.Sprintf(", signal latency %d frame(s)", r.SignalLatency)
		}
		fmt.Fprintf(out, "  #%d seq %d %s -> %s: trigger f%d%s%s\n",
			i+1, r.Seq, r.Source, r.Target, r.TriggerFrame, lat, flags)
		fmt.Fprintln(out, span("halt", r.Halt))
		fmt.Fprintln(out, span("prepare", r.Prepare))
		fmt.Fprintln(out, span("initialize", r.Init))
		if !r.Complete() {
			fmt.Fprintln(out, "      open at end of ring (incomplete window)")
			continue
		}
		bound := "no declared bound"
		if r.BoundFrames > 0 {
			bound = fmt.Sprintf("bound %d, margin %d", r.BoundFrames, r.MarginFrames)
		}
		fmt.Fprintf(out, "      complete   f%d, window %d frame(s), %s\n", r.CompleteFrame, r.WindowFrames, bound)
	}

	frameLen := time.Millisecond
	if rs != nil {
		frameLen = rs.FrameLen
	}
	tr, base, err := telemetry.ReconstructTrace("flightrec", frameLen, events)
	if err != nil {
		return fmt.Errorf("reconstructing trace: %w", err)
	}

	var violations []trace.Violation
	checked := "SP1, SP4"
	violations = append(violations, trace.CheckSP1(tr)...)
	violations = append(violations, trace.CheckSP4(tr)...)
	if rs != nil {
		checked = "SP1-SP4"
		violations = append(violations, trace.CheckSP2(tr, rs)...)
		violations = append(violations, trace.CheckSP3(tr, rs)...)
	}
	if len(violations) == 0 {
		fmt.Fprintf(out, "%s: all properties hold over the reconstructed trace (%d cycles, base frame %d)\n",
			checked, tr.Len(), base)
		if rs == nil {
			fmt.Fprintln(out, "(no specification given: pass -spec, -canonical or -avionics to also check SP2/SP3)")
		}
		return nil
	}
	fmt.Fprintf(out, "%s: %d violation(s) over the reconstructed trace\n", checked, len(violations))
	for _, v := range violations {
		fmt.Fprintf(out, "  %s\n", v)
	}
	return errViolations
}
