package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestSteadyScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "steady", "-frames", "150"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"steady cruise", "reconfigurations (0)", "all properties hold"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestAlternatorScenarioWithTraceAndSFTA(t *testing.T) {
	tracePath := filepath.Join(t.TempDir(), "run.json")
	var out bytes.Buffer
	err := run([]string{"-scenario", "alternator", "-frames", "200",
		"-trace", tracePath, "-sfta"}, &out)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{
		"reduced-service",
		"SCRAM protocol log",
		"derived SFTA structure",
		"SFTA recovery",
		"all properties hold",
		"trace written to",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if _, err := os.Stat(tracePath); err != nil {
		t.Errorf("trace file not written: %v", err)
	}
}

func TestProcFailScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "procfail", "-frames", "200"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	if !strings.Contains(text, "reduced-service") || !strings.Contains(text, "all properties hold") {
		t.Errorf("procfail output unexpected:\n%s", text)
	}
}

func TestUnknownScenario(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-scenario", "bogus"}, &out); err == nil {
		t.Fatal("unknown scenario accepted")
	}
}
