// Command avionics runs the paper's section 7 example instantiation: the
// hypothetical UAV avionics system (autopilot + flight control system +
// electrical power model + aircraft dynamics) under a selectable failure
// scenario, printing a frame log, the SCRAM protocol exchange (Table 1), the
// reconfiguration summary, and the SP1-SP4 verdicts.
//
// Usage:
//
//	avionics -scenario alternator -frames 600
//	avionics -scenario mission -trace run.json
//	avionics -scenario double -paced         # soft real time, 20 ms frames
//	avionics -scenario mission -paced -serve 127.0.0.1:8080   # live telemetry plane
//
// Scenarios: steady, alternator, double, repair, procfail, mission.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/avionics"
	"repro/internal/core"
	"repro/internal/envmon"
	"repro/internal/experiments"
	"repro/internal/fta"
	"repro/internal/spec"
	"repro/internal/telemetry/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "avionics:", err)
		os.Exit(1)
	}
}

// scenario bundles a description with the options it needs.
type scenario struct {
	describe string
	frames   int
	opts     avionics.ScenarioOptions
}

func scenarios() map[string]scenario {
	initial := avionics.AircraftState{AltFt: 5000, HeadingDeg: 0, AirspeedKts: 100}
	return map[string]scenario{
		"steady": {
			describe: "steady cruise, no failures",
			frames:   500,
			opts:     avionics.ScenarioOptions{Initial: initial, DwellFrames: -1},
		},
		"alternator": {
			describe: "alternator 1 fails at frame 100: Full -> Reduced (section 7.1)",
			frames:   600,
			opts: avionics.ScenarioOptions{
				Initial:     initial,
				DwellFrames: -1,
				Script: []envmon.Event{
					{Frame: 100, Factor: avionics.FactorAlt1, Value: avionics.AltFailed},
				},
			},
		},
		"double": {
			describe: "both alternators fail: Full -> Reduced -> Minimal",
			frames:   800,
			opts: avionics.ScenarioOptions{
				Initial:     initial,
				DwellFrames: 10,
				Script: []envmon.Event{
					{Frame: 100, Factor: avionics.FactorAlt1, Value: avionics.AltFailed},
					{Frame: 300, Factor: avionics.FactorAlt2, Value: avionics.AltFailed},
				},
			},
		},
		"repair": {
			describe: "alternator fails then is repaired: Full -> Reduced -> Full",
			frames:   800,
			opts: avionics.ScenarioOptions{
				Initial:     initial,
				DwellFrames: 10,
				Script: []envmon.Event{
					{Frame: 100, Factor: avionics.FactorAlt1, Value: avionics.AltFailed},
					{Frame: 400, Factor: avionics.FactorAlt1, Value: avionics.AltOK},
				},
			},
		},
		"procfail": {
			describe: "the FCS's processor fails: state migrates, Full -> Reduced",
			frames:   600,
			opts: avionics.ScenarioOptions{
				Initial:     initial,
				DwellFrames: -1,
				ProcEvents: []core.ProcEvent{
					{Frame: 100, Proc: avionics.Proc2, Kind: core.ProcFail},
				},
			},
		},
		"mission": {
			describe: "climb + turn, degradation to minimal, partial repair",
			frames:   2400,
			opts: avionics.ScenarioOptions{
				Initial:     initial,
				Targets:     avionics.Targets{AltFt: 5300, HdgDeg: 45, Climb: true, Turn: true},
				DwellFrames: 10,
				Script: []envmon.Event{
					{Frame: 500, Factor: avionics.FactorAlt1, Value: avionics.AltFailed},
					{Frame: 1200, Factor: avionics.FactorAlt2, Value: avionics.AltFailed},
					{Frame: 1800, Factor: avionics.FactorAlt1, Value: avionics.AltOK},
				},
			},
		},
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("avionics", flag.ContinueOnError)
	name := fs.String("scenario", "alternator", "scenario: steady, alternator, double, repair, procfail, mission")
	frames := fs.Int("frames", 0, "override the scenario's frame count")
	paced := fs.Bool("paced", false, "run in soft real time (20 ms frames)")
	tracePath := fs.String("trace", "", "write the recorded trace to this file (JSON)")
	every := fs.Int("log-every", 100, "print a status line every N frames")
	showSFTA := fs.Bool("sfta", false, "print the derived SFTA structure (section 5.2 view)")
	serveAddr := fs.String("serve", "", "serve the live telemetry plane (/metrics, /journal, /traces, /trace/<id>) on this address while the scenario flies")
	if err := fs.Parse(args); err != nil {
		return err
	}

	sc, ok := scenarios()[*name]
	if !ok {
		return fmt.Errorf("unknown scenario %q", *name)
	}
	if *frames > 0 {
		sc.frames = *frames
	}
	sc.opts.Paced = *paced

	fmt.Fprintf(out, "scenario %q: %s\n", *name, sc.describe)
	fmt.Fprintf(out, "frame length %v, %d frames (%v of flight)\n\n",
		avionics.FrameLength, sc.frames, avionics.FrameLength*timesDuration(sc.frames))

	// The procfail scenario needs a classifier that folds proc-2 health
	// into the power state, so it wires its own system.
	if *name == "procfail" {
		return runProcFail(out, sc, *tracePath, *showSFTA, *serveAddr)
	}

	s, err := avionics.NewScenario(sc.opts)
	if err != nil {
		return err
	}
	defer s.Close()
	stopServe, err := attachServe(out, s.Sys, *serveAddr)
	if err != nil {
		return err
	}
	defer stopServe()

	for f := 0; f < sc.frames; f += *every {
		n := *every
		if f+n > sc.frames {
			n = sc.frames - f
		}
		if err := s.Sys.Run(n); err != nil {
			return err
		}
		printStatus(out, s)
	}
	return report(out, s.Sys, *tracePath, *showSFTA)
}

// attachServe starts the live telemetry plane: a commit hook republishes a
// fresh snapshot — frame number, metrics, the full event ring — at every
// frame boundary, and the server hands the latest published copy to HTTP
// readers entirely off the frame path. A no-op when addr is empty.
func attachServe(out io.Writer, sys *core.System, addr string) (func(), error) {
	if addr == "" {
		return func() {}, nil
	}
	srv, err := serve.AttachSystem(sys, avionics.FrameLength)
	if err != nil {
		return nil, fmt.Errorf("-serve: %w", err)
	}
	bound, err := srv.Start(addr)
	if err != nil {
		return nil, err
	}
	fmt.Fprintf(out, "telemetry plane: http://%s (/metrics /journal /traces /trace/<id>)\n\n", bound)
	return func() { srv.Close() }, nil
}

// runProcFail builds the processor-failure variant: the classifier folds
// proc-2 health into the power state.
func runProcFail(out io.Writer, sc scenario, tracePath string, showSFTA bool, serveAddr string) error {
	classifier := func(f map[envmon.Factor]string) spec.EnvState {
		state := avionics.Classifier(f)
		if f[core.ProcHealthFactor(avionics.Proc2)] == core.ProcFailed && state == avionics.EnvPowerFull {
			state = avionics.EnvPowerReduced
		}
		return state
	}
	ap := avionics.NewAutopilot(avionics.Targets{AltFt: sc.opts.Initial.AltFt, HdgDeg: sc.opts.Initial.HeadingDeg})
	fcs := avionics.NewFCS()
	sys, err := core.NewSystem(core.Options{
		Spec:       avionics.Spec(),
		Apps:       map[spec.AppID]core.App{avionics.AppAutopilot: ap, avionics.AppFCS: fcs},
		Classifier: classifier,
		InitialFactors: map[envmon.Factor]string{
			avionics.FactorAlt1:    avionics.AltOK,
			avionics.FactorAlt2:    avionics.AltOK,
			avionics.FactorBattery: "ok",
		},
		ProcEvents:  sc.opts.ProcEvents,
		BusSchedule: avionics.BusSchedule(),
		Paced:       sc.opts.Paced,
	})
	if err != nil {
		return err
	}
	defer sys.Close()
	stopServe, err := attachServe(out, sys, serveAddr)
	if err != nil {
		return err
	}
	defer stopServe()
	if err := sys.Run(sc.frames); err != nil {
		return err
	}
	return report(out, sys, tracePath, showSFTA)
}

func printStatus(out io.Writer, s *avionics.Scenario) {
	st := s.Dyn.State()
	fmt.Fprintf(out, "f%-6d cfg=%-16s alt=%7.1f ft  vs=%7.1f fpm  hdg=%6.1f  bank=%5.1f  %s\n",
		s.Sys.Frame(), s.Sys.Kernel().Current(), st.AltFt, st.VSFpm, st.HeadingDeg, st.BankDeg, s.Elec)
}

func report(out io.Writer, sys *core.System, tracePath string, showSFTA bool) error {
	if showSFTA {
		fmt.Fprintln(out, "\nderived SFTA structure (section 5.2):")
		fmt.Fprint(out, fta.Render(fta.Derive(sys.Trace())))
	}
	fmt.Fprintln(out, "\nSCRAM protocol log (paper Table 1):")
	fmt.Fprint(out, experiments.RenderTable1(sys.Kernel().Events()))

	tr := sys.Trace()
	fmt.Fprintf(out, "\nreconfigurations (%d):\n", len(tr.Reconfigs()))
	for _, r := range tr.Reconfigs() {
		fmt.Fprintf(out, "  [%d,%d] %s -> %s (%d frames = %v)\n",
			r.StartC, r.EndC, r.From, r.To, r.Frames(),
			avionics.FrameLength*timesDuration(int(r.Frames())))
	}

	violations := sys.CheckProperties()
	if len(violations) == 0 {
		fmt.Fprintln(out, "\nSP1-SP4: all properties hold over the recorded trace")
	} else {
		fmt.Fprintf(out, "\nSP1-SP4: %d violation(s):\n", len(violations))
		for _, v := range violations {
			fmt.Fprintf(out, "  %s\n", v)
		}
	}

	if tracePath != "" {
		data, err := json.MarshalIndent(tr, "", " ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(tracePath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "\ntrace written to %s (verify with: tracecheck -trace %s -avionics)\n",
			tracePath, tracePath)
	}
	return nil
}

// timesDuration converts a frame count into a duration multiplier.
func timesDuration(n int) time.Duration { return time.Duration(n) }
