// Command scramcheck statically analyzes a reconfiguration specification:
// it discharges the architecture's proof obligations (coverage, dependency
// acyclicity, timing, resources, dwell guard — the analog of the paper's
// generated TCCs, Figure 2) and prints the timing and restriction analyses
// of section 5.3.
//
// Usage:
//
//	scramcheck -spec system.json     # analyze a specification file
//	scramcheck -avionics             # analyze the built-in avionics system
//	scramcheck -avionics -dump       # print the avionics spec as JSON
//	scramcheck -avionics -pvs        # print the spec as a PVS theory skeleton
//	scramcheck -spec system.json -json
//
// The exit status is 0 when every obligation is discharged and 1 otherwise.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/avionics"
	"repro/internal/cli"
	"repro/internal/spec"
	"repro/internal/statics"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "scramcheck:", err)
		os.Exit(1)
	}
}

// errObligations distinguishes "analysis ran, obligations failed" from
// operational errors; both exit 1, but the former prints a report first.
var errObligations = errors.New("obligations failed")

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("scramcheck", flag.ContinueOnError)
	specPath := fs.String("spec", "", "path to a reconfiguration specification (JSON)")
	useAvionics := fs.Bool("avionics", false, "analyze the built-in avionics specification")
	dump := fs.Bool("dump", false, "print the selected specification as JSON and exit")
	pvs := fs.Bool("pvs", false, "print the specification as a PVS theory skeleton and exit")
	asJSON := fs.Bool("json", false, "emit the report as JSON")
	outPath := fs.String("out", "", "write the output to this file instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	out, closeOut, err := cli.Output(*outPath, out)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeOut(); err == nil {
			err = cerr
		}
	}()

	var rs *spec.ReconfigSpec
	switch {
	case *useAvionics:
		rs = avionics.Spec()
	case *specPath != "":
		data, err := os.ReadFile(*specPath)
		if err != nil {
			return err
		}
		rs = new(spec.ReconfigSpec)
		if err := json.Unmarshal(data, rs); err != nil {
			return fmt.Errorf("parsing %s: %w", *specPath, err)
		}
	default:
		return errors.New("provide -spec <file> or -avionics")
	}

	if *dump {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(rs)
	}
	if *pvs {
		_, err := fmt.Fprint(out, statics.ExportPVS(rs))
		return err
	}

	report, err := statics.Check(rs)
	if err != nil {
		return err
	}
	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		if err := enc.Encode(report); err != nil {
			return err
		}
	} else {
		printReport(out, report)
	}
	if !report.AllDischarged() {
		return errObligations
	}
	return nil
}

func printReport(out io.Writer, r *statics.Report) {
	fmt.Fprintf(out, "specification: %s\n", r.SpecName)
	fmt.Fprintf(out, "reachable configurations: %v\n\n", r.Reachable)

	fmt.Fprintln(out, "obligations:")
	for _, o := range r.Obligations {
		status := "PROVED"
		if !o.OK {
			status = "FAILED"
		}
		fmt.Fprintf(out, "  [%s] %-28s %s\n", status, o.ID, o.Description)
		if o.Detail != "" {
			fmt.Fprintf(out, "           %s\n", o.Detail)
		}
	}

	fmt.Fprintln(out, "\ntiming obligations (required <= declared, frames):")
	for _, t := range r.Timing {
		status := "PROVED"
		if !t.OK {
			status = "FAILED"
		}
		fmt.Fprintf(out, "  [%s] %s -> %s: required %d, declared %d\n",
			status, t.From, t.To, t.RequiredFrames, t.DeclaredFrames)
	}

	if len(r.Cycles) > 0 {
		fmt.Fprintln(out, "\ntransition-graph cycles (guarded by dwell time):")
		for _, c := range r.Cycles {
			fmt.Fprintf(out, "  %v\n", c)
		}
	}

	fmt.Fprintln(out, "\nrestriction analysis (section 5.3):")
	fmt.Fprintf(out, "  longest chain to safety: %v = %d frames\n",
		r.Restriction.LongestChain, r.Restriction.LongestChainFrames)
	if r.Restriction.InterposedSafe != "" {
		fmt.Fprintf(out, "  interposing %s: max{T(i,s)} = %d frames\n",
			r.Restriction.InterposedSafe, r.Restriction.InterposedBoundFrames)
	}

	if r.AllDischarged() {
		fmt.Fprintln(out, "\nall obligations discharged")
	} else {
		fmt.Fprintf(out, "\nFAILED obligations: %v\n", r.Failures())
	}
}
