package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/statics"
)

func TestAvionicsReportAllProved(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-avionics"}, &out); err != nil {
		t.Fatalf("run: %v\n%s", err, out.String())
	}
	text := out.String()
	for _, want := range []string{"covering_txns", "all obligations discharged", "longest chain"} {
		if !strings.Contains(text, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Contains(text, "FAILED") {
		t.Errorf("unexpected failure in output:\n%s", text)
	}
}

func TestDumpRoundTrips(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-avionics", "-dump"}, &out); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out2 bytes.Buffer
	if err := run([]string{"-spec", path}, &out2); err != nil {
		t.Fatalf("re-check of dumped spec: %v\n%s", err, out2.String())
	}
	if !strings.Contains(out2.String(), "all obligations discharged") {
		t.Error("dumped spec does not re-discharge")
	}
}

func TestFailingSpecExitsNonZero(t *testing.T) {
	// Dump, undersize a bound, re-check: obligations must fail.
	var out bytes.Buffer
	if err := run([]string{"-avionics", "-dump"}, &out); err != nil {
		t.Fatal(err)
	}
	var raw map[string]any
	if err := json.Unmarshal(out.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	transitions := raw["transitions"].([]any)
	transitions[0].(map[string]any)["max_frames"] = 1.0
	data, err := json.Marshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "broken.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var out2 bytes.Buffer
	err = run([]string{"-spec", path}, &out2)
	if !errors.Is(err, errObligations) {
		t.Fatalf("err = %v, want errObligations\n%s", err, out2.String())
	}
	if !strings.Contains(out2.String(), "FAILED") {
		t.Error("report does not show the failure")
	}
}

func TestJSONOutputParses(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-avionics", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var report statics.Report
	if err := json.Unmarshal(out.Bytes(), &report); err != nil {
		t.Fatalf("JSON report does not parse: %v", err)
	}
	if !report.AllDischarged() {
		t.Error("parsed report not discharged")
	}
}

func TestArgumentErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("no input accepted")
	}
	if err := run([]string{"-spec", "/nonexistent/x.json"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-spec", bad}, &out); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestPVSExport(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-avionics", "-pvs"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"uav_avionics: THEORY", "covering_txns", "SP3(tr, r)"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("PVS output missing %q", want)
		}
	}
}
