// Command campaign fans a fault-injection matrix — arms of fault
// configurations crossed with seeds — over a bounded worker pool and
// merges the results into a deterministic aggregate report: the same
// matrix yields a byte-identical report for any -workers value.
//
// Usage:
//
//	campaign -preset s1 -runs 25 -frames 300 -workers 8
//	campaign -preset s2 -json -out report.json
//	campaign -matrix matrix.json -workers 4
//	campaign -preset s1 -ring-out ring.jsonl   # export the black-box journal
//
// A matrix file is the JSON form of campaign.Matrix: seeds, frames, an
// optional base seed and expansion order, and a list of arms ({"name",
// "kind": "storage"|"bus"|"membership"|"chaos", "replicas", "faults":
// {...}}, {"rates": {...}}, {"churn", "evictions", "corrupt_records"} or
// {"fleet_tenants", "crashes", "tenant_panics", "torn_writes",
// "retain_frames"}). The -preset flag supplies the built-in s1 (hardened
// storage under media faults), s2 (avionics mission over a degraded bus),
// s3 (dynamic membership under join/leave churn, evictions and record
// corruption) and s4 (durable fleet host under seeded chaos storms with
// crash-restart cycles and torn manifest writes) matrices instead; -runs,
// -frames, -seed, -storage-faults, -bus-faults, -churn and -crashes
// parameterize them.
//
// Progress lines go to stderr as runs complete (completion order is
// scheduling-dependent; the report is not). The exit status is nonzero if
// any run fails, violates an SP property or a membership invariant, or lets
// silently corrupted data through its storage oracle.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/bus"
	"repro/internal/campaign"
	"repro/internal/cli"
	"repro/internal/det"
	"repro/internal/stable"
	"repro/internal/telemetry"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "campaign:", err)
		os.Exit(1)
	}
}

// loadMatrix resolves the campaign configuration from -matrix or -preset.
// Explicitly set flags override the matching matrix-file fields, so a
// stored matrix can be re-run at a different scale without editing it.
func loadMatrix(fs *flag.FlagSet, matrixPath, preset string, runs, frames int, seed int64, storageFaults, busFaults float64, churn, crashes int) (campaign.Matrix, error) {
	var m campaign.Matrix
	switch {
	case matrixPath != "":
		data, err := os.ReadFile(matrixPath)
		if err != nil {
			return m, err
		}
		if err := json.Unmarshal(data, &m); err != nil {
			return m, fmt.Errorf("parsing %s: %w", matrixPath, err)
		}
		set := map[string]bool{}
		fs.Visit(func(f *flag.Flag) { set[f.Name] = true })
		if set["runs"] || set["seeds"] {
			m.Seeds = runs
		}
		if set["frames"] {
			m.Frames = frames
		}
		if set["seed"] {
			m.BaseSeed = seed
		}
	case preset == "s1":
		m = campaign.S1Matrix(runs, frames, stable.FaultProfile{
			TornWriteRate: storageFaults / 2,
			BitRotRate:    storageFaults,
			StuckReadRate: storageFaults / 2,
		})
		m.BaseSeed = seed
	case preset == "s2":
		m = campaign.S2Matrix(runs, frames, bus.FaultRates{
			Drop:      busFaults,
			Duplicate: busFaults / 2,
			Delay:     busFaults / 2,
		})
		m.BaseSeed = seed
	case preset == "s3":
		m = campaign.S3Matrix(runs, frames, churn)
		m.BaseSeed = seed
	case preset == "s4":
		m = campaign.S4Matrix(runs, frames, crashes)
		m.BaseSeed = seed
	default:
		return m, fmt.Errorf("unknown preset %q (want s1, s2, s3 or s4, or pass -matrix <file>)", preset)
	}
	return m, nil
}

// textReport renders the per-run table and the aggregate tallies.
func textReport(out io.Writer, rep campaign.Report) {
	fmt.Fprintf(out, "campaign %s: %d runs (%d seeds x %d arms, %d frames)\n",
		rep.Matrix.Name, len(rep.Results), rep.Matrix.Seeds, len(rep.Matrix.Arms), rep.Matrix.Frames)
	for _, r := range rep.Results {
		if r.Err != "" {
			fmt.Fprintf(out, "  run %-3d %-10s seed %-3d ERROR %s\n", r.Run.ID, r.Run.Arm, r.Run.Seed, r.Err)
			continue
		}
		if r.Chaos != nil {
			o := r.Chaos
			fmt.Fprintf(out, "  run %-3d %-10s seed %-3d crashes %-2d recovered %-3d injected %-3d dedupe %-3d torn %-2d quarantined %-2d checked %d/%d\n",
				r.Run.ID, r.Run.Arm, r.Run.Seed, o.Crashes, o.Recovered, o.Injected, o.DedupeHits, o.TornWrites, o.Quarantined, o.Checked, o.Tenants)
			continue
		}
		line := fmt.Sprintf("  run %-3d %-10s seed %-3d reconfigs %-3d halts %-2d silent-wrong %-2d SP violations %d",
			r.Run.ID, r.Run.Arm, r.Run.Seed, r.Reconfigs, r.StorageHalts, r.SilentWrongData, r.Violations)
		if r.Membership != nil {
			s := r.Membership.Membership
			line += fmt.Sprintf(" | epoch %-3d joins %d leaves %d rejected %d evictions %d converges %d membership violations %d",
				r.Membership.Epoch, s.Joins, s.Leaves, s.Rejected, s.Evictions, s.Converges, r.MembershipViolations)
		}
		fmt.Fprintln(out, line)
	}
	t := rep.Totals
	fmt.Fprintf(out, "totals: %d reconfigs, %d storage halts, %d silent wrong data, %d SP violations, %d errors\n",
		t.Reconfigs, t.StorageHalts, t.SilentWrongData, t.Violations, t.Errors)
	if t.Membership != nil {
		fmt.Fprintf(out, "membership: %d joins, %d leaves, %d rejected, %d evictions, %d converges, max epoch %d, %d invariant violations\n",
			t.Membership.Joins, t.Membership.Leaves, t.Membership.Rejected, t.Membership.Evictions,
			t.Membership.Converges, t.Membership.MaxEpoch, t.MembershipViolations)
	}
	if t.Chaos != nil {
		fmt.Fprintf(out, "chaos: %d storms, %d crashes, %d tenants recovered, %d torn writes healed, %d injections (%d deduped), %d quarantined, %d/%d checked, %d mismatches\n",
			t.Chaos.Storms, t.Chaos.Crashes, t.Chaos.Recovered, t.Chaos.TornWrites,
			t.Chaos.Injected, t.Chaos.DedupeHits, t.Chaos.Quarantined,
			t.Chaos.Checked, t.Chaos.Tenants, t.Chaos.Mismatches)
	}
	if t.WindowFrames.Count > 0 {
		fmt.Fprintf(out, "recovery latency: %d windows, mean %.1f frames, max %d\n",
			t.WindowFrames.Count, float64(t.WindowFrames.Sum)/float64(t.WindowFrames.Count), t.WindowFrames.Max)
	}
	if q := t.WindowQuantiles; q != nil {
		fmt.Fprintf(out, "window frames: p50 %d, p95 %d, p99 %d\n", q.P50, q.P95, q.P99)
	}
	if q := t.SignalQuantiles; q != nil {
		fmt.Fprintf(out, "signal latency frames: p50 %d, p95 %d, p99 %d\n", q.P50, q.P95, q.P99)
	}
	if len(t.SpanPhases) > 0 {
		fmt.Fprint(out, "trace phases (total frames):")
		for _, name := range det.SortedKeys(t.SpanPhases) {
			fmt.Fprintf(out, " %s=%d", name, t.SpanPhases[name])
		}
		fmt.Fprintln(out)
	}
	for i, s := range rep.SlowestTraces {
		fmt.Fprintf(out, "slowest trace #%d: run %d trace %s seq %d %s -> %s, window %d of bound %d (margin %d)\n",
			i+1, s.Run, s.Trace.ID, s.Trace.Seq, s.Trace.From, s.Trace.Config,
			s.Trace.Window, s.Trace.Bound, s.Trace.Margin)
	}
}

func run(args []string, out, errOut io.Writer) error {
	fs := flag.NewFlagSet("campaign", flag.ContinueOnError)
	matrixPath := fs.String("matrix", "", "campaign matrix configuration (JSON); overrides -preset")
	preset := fs.String("preset", "s1", "built-in matrix: s1 (storage faults), s2 (bus faults) or s3 (membership churn)")
	runs := fs.Int("runs", 5, "seeds per arm")
	seed := fs.Int64("seed", 0, "base seed; run i of an arm uses seed+i")
	frames := fs.Int("frames", 300, "frames per run")
	workers := fs.Int("workers", 4, "worker pool size (the report is identical for any value)")
	asJSON := fs.Bool("json", false, "emit the full aggregate report as JSON instead of the table")
	outPath := fs.String("out", "", "write the report to this file instead of stdout")
	ringOut := fs.String("ring-out", "", "write the most interesting run's flight-recorder journal (JSONL) to this file")
	quiet := fs.Bool("quiet", false, "suppress per-run progress lines on stderr")
	storageFaults := fs.Float64("storage-faults", 0.05, "s1 preset base per-medium fault rate (torn writes and stuck reads at half, bit rot at full)")
	busFaults := fs.Float64("bus-faults", 0.05, "s2 preset base per-message fault rate (drop at full, duplicate and delay at half)")
	churn := fs.Int("churn", 3, "s3 preset spare join/leave cycles per run")
	crashes := fs.Int("crashes", 1, "s4 preset host crash-restart cycles per storm")
	cli.Alias(fs, "runs", "seeds")
	if err := fs.Parse(args); err != nil {
		return err
	}

	m, err := loadMatrix(fs, *matrixPath, *preset, *runs, *frames, *seed, *storageFaults, *busFaults, *churn, *crashes)
	if err != nil {
		return err
	}
	if err := m.Validate(); err != nil {
		return err
	}

	eng := campaign.Engine{Workers: *workers}
	if !*quiet {
		eng.Progress = func(done, total int, res campaign.Result) {
			status := fmt.Sprintf("%d reconfigs, %d violations", res.Reconfigs, res.Violations)
			if res.Err != "" {
				status = "ERROR " + res.Err
			}
			fmt.Fprintf(errOut, "campaign: %d/%d %s seed %d: %s\n", done, total, res.Run.Arm, res.Run.Seed, status)
		}
	}
	rep := campaign.BuildReport(m, eng.Execute(m.Expand()))

	w, closeOut, err := cli.Output(*outPath, out)
	if err != nil {
		return err
	}
	if *asJSON {
		// cli.WriteJSON rather than rep.JSON: the report body carries the
		// shared schema_version stamp like every other tool's -json output.
		if err := cli.WriteJSON(w, rep); err != nil {
			closeOut()
			return err
		}
	} else {
		textReport(w, rep)
	}
	if err := closeOut(); err != nil {
		return err
	}

	if *ringOut != "" {
		ring := rep.LastRing()
		if ring == nil {
			return errors.New("-ring-out: no flight-recorder ring recovered")
		}
		f, err := os.Create(*ringOut)
		if err != nil {
			return err
		}
		if err := telemetry.WriteJournal(f, ring); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(errOut, "campaign: wrote %d flight-recorder events to %s\n", len(ring), *ringOut)
	}

	if err := rep.FirstError(); err != nil {
		return err
	}
	if rep.Totals.Violations > 0 || rep.Totals.SilentWrongData > 0 || rep.Totals.MembershipViolations > 0 {
		return fmt.Errorf("%d SP violations, %d silent wrong data, %d membership violations",
			rep.Totals.Violations, rep.Totals.SilentWrongData, rep.Totals.MembershipViolations)
	}
	return nil
}
