package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestPresetText runs the s1 preset small and checks the table and the
// clean exit.
func TestPresetText(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-preset", "s1", "-runs", "1", "-frames", "120", "-workers", "2"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v\nstderr:\n%s", err, errOut.String())
	}
	for _, want := range []string{"campaign s1-storage-faults", "shielded", "defeat", "totals:", "recovery latency"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
	if !strings.Contains(errOut.String(), "2/2") {
		t.Errorf("progress lines missing final tick:\n%s", errOut.String())
	}
}

// TestJSONDeterministicAcrossWorkers is the tool-level determinism gate:
// the same matrix at different worker counts writes byte-identical report
// files.
func TestJSONDeterministicAcrossWorkers(t *testing.T) {
	dir := t.TempDir()
	var reports [][]byte
	for _, workers := range []string{"1", "4"} {
		path := filepath.Join(dir, "report."+workers+".json")
		var out, errOut bytes.Buffer
		err := run([]string{"-preset", "s1", "-runs", "2", "-frames", "120",
			"-workers", workers, "-json", "-quiet", "-out", path}, &out, &errOut)
		if err != nil {
			t.Fatalf("workers=%s: %v", workers, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, data)
	}
	if !bytes.Equal(reports[0], reports[1]) {
		t.Fatal("reports differ between -workers 1 and -workers 4")
	}
	var decoded struct {
		Totals struct {
			Runs         int   `json:"runs"`
			Violations   int   `json:"sp_violations"`
			SilentWrong  int64 `json:"silent_wrong_data"`
			WindowFrames struct {
				Count int64 `json:"count"`
			} `json:"window_frames"`
		} `json:"totals"`
	}
	if err := json.Unmarshal(reports[0], &decoded); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if decoded.Totals.Runs != 4 || decoded.Totals.Violations != 0 || decoded.Totals.SilentWrong != 0 {
		t.Errorf("totals = %+v", decoded.Totals)
	}
	if decoded.Totals.WindowFrames.Count == 0 {
		t.Error("no recovery-latency observations in aggregate")
	}
}

// TestMatrixFile runs a matrix from a JSON config, with a flag override.
func TestMatrixFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "matrix.json")
	matrix := `{
		"name": "custom",
		"seeds": 3,
		"frames": 100,
		"arms": [
			{"name": "light", "kind": "storage", "replicas": 3,
			 "faults": {"TornWriteRate": 0.01, "BitRotRate": 0.02, "StuckReadRate": 0.01}}
		]
	}`
	if err := os.WriteFile(path, []byte(matrix), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	// -runs 1 overrides the file's three seeds.
	err := run([]string{"-matrix", path, "-runs", "1", "-quiet"}, &out, &errOut)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "campaign custom: 1 runs") {
		t.Errorf("override not applied:\n%s", out.String())
	}
}

// TestBadMatrixRejectedUpFront pins the up-front validation path: a
// defective arm fails before any frames are spent.
func TestBadMatrixRejectedUpFront(t *testing.T) {
	path := filepath.Join(t.TempDir(), "matrix.json")
	matrix := `{"seeds": 1, "frames": 50, "arms": [{"name": "bad", "kind": "quantum"}]}`
	if err := os.WriteFile(path, []byte(matrix), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	err := run([]string{"-matrix", path, "-quiet"}, &out, &errOut)
	if err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Fatalf("err = %v, want unknown kind", err)
	}
}

// TestDeprecatedSeedsAlias keeps the old -seeds spelling working.
func TestDeprecatedSeedsAlias(t *testing.T) {
	var out, errOut bytes.Buffer
	err := run([]string{"-preset", "s1", "-seeds", "1", "-frames", "100", "-quiet"}, &out, &errOut)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "2 runs (1 seeds") {
		t.Errorf("alias not applied:\n%s", out.String())
	}
}
