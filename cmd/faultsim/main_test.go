package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestSingleExperiments(t *testing.T) {
	tests := []struct {
		id   string
		want []string
	}{
		{"t1", []string{"SFTA phases", "trigger", "complete"}},
		{"f2", []string{"static proof obligations", "covering_txns"}},
		{"e1", []string{"equipment requirement", "Masking total"}},
		{"e2", []string{"worst-case service restriction", "Interposed"}},
	}
	for _, tt := range tests {
		t.Run(tt.id, func(t *testing.T) {
			var out bytes.Buffer
			if err := run([]string{"-experiment", tt.id}, &out); err != nil {
				t.Fatalf("run: %v", err)
			}
			for _, want := range tt.want {
				if !strings.Contains(out.String(), want) {
					t.Errorf("output missing %q:\n%s", want, out.String())
				}
			}
		})
	}
}

func TestT2SmallRun(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "t2", "-seeds", "3", "-frames", "120"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "0 violations") {
		t.Errorf("t2 output:\n%s", out.String())
	}
}

func TestUnknownExperiment(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "zz"}, &out); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestJSONOutput(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "e1", "-json"}, &out); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Rows []struct {
			MaskingTotal  int
			ReconfigTotal int
		}
	}
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON output does not parse: %v\n%s", err, out.String())
	}
	if len(decoded.Rows) == 0 || decoded.Rows[0].MaskingTotal != 2 {
		t.Errorf("decoded = %+v", decoded)
	}
}

func TestS1StorageFaults(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "s1", "-seeds", "3", "-frames", "150"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"shielded", "defeat", "silent wrong data", "total:"} {
		if !strings.Contains(s, want) {
			t.Errorf("s1 output missing %q:\n%s", want, s)
		}
	}
	if !strings.Contains(s, "0 silent wrong data") {
		t.Errorf("s1 reports silent wrong data:\n%s", s)
	}
}

func TestS2BusFaults(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-experiment", "s2", "-seeds", "2", "-frames", "100",
		"-bus-faults", "0.1"}, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"drop", "violations"} {
		if !strings.Contains(s, want) {
			t.Errorf("s2 output missing %q:\n%s", want, s)
		}
	}
}
