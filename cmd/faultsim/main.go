// Command faultsim regenerates the paper's experiment tables (see DESIGN.md
// for the experiment index):
//
//	t1  Table 1  — the SFTA phase protocol from a live reconfiguration
//	t2  Table 2  — SP1-SP4 over randomized fault campaigns
//	t2x bounded-exhaustive verification of every env sequence to depth 4
//	f2  Figure 2 — static proof obligations and failing mutants
//	e1  §5.1     — equipment: masking vs reconfiguration
//	e2  §5.3     — restriction-time bounds vs measurement
//	e3  §5.3     — dwell guard vs environment churn
//	e4  §7       — the avionics mission end to end
//	e5  §7.1     — a second failure in every protocol frame
//	s1  beyond   — hardened stable storage under torn-write/bit-rot/stuck-read media faults
//	s2  beyond   — the avionics mission over a lossy, duplicating, delaying bus
//
// Usage:
//
//	faultsim -experiment all
//	faultsim -experiment t2 -runs 50 -frames 500
//	faultsim -experiment s1 -runs 25 -storage-faults 0.05 -workers 8
//	faultsim -experiment s2 -bus-faults 0.1 -json -out report.json
//	faultsim -experiment s1 -ring-out ring.jsonl   # export the black-box journal
//	faultsim -experiment s1 -serve 127.0.0.1:8080  # then serve the live telemetry plane
//
// -runs (formerly -seeds, kept as a deprecated alias) sizes the randomized
// campaigns; -seed offsets the s1/s2 campaign seeds; -workers fans the
// s1/s2 campaigns over the campaign engine's pool (the report is identical
// for any value).
//
// The s1 and s2 campaigns recover the flight-recorder ring from the SCRAM
// host's stable storage after each run; -ring-out writes the most
// interesting ring (for s1, a defeat-mode run that halted a processor) as a
// JSONL journal readable by cmd/flightrec. -serve publishes the same run's
// final telemetry snapshot over HTTP — Prometheus text on /metrics, the
// journal on /journal?since_frame=N, and the assembled causal traces on
// /traces and /trace/<id> — until the process is interrupted.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/bus"
	"repro/internal/cli"
	"repro/internal/experiments"
	"repro/internal/stable"
	"repro/internal/telemetry"
	"repro/internal/telemetry/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "faultsim:", err)
		os.Exit(1)
	}
}

// render returns either the experiment's table text or its JSON form.
func render(asJSON bool, text string, result any) (string, error) {
	if !asJSON {
		return text, nil
	}
	data, err := json.MarshalIndent(result, "", "  ")
	if err != nil {
		return "", err
	}
	return string(data), nil
}

func run(args []string, out io.Writer) (err error) {
	fs := flag.NewFlagSet("faultsim", flag.ContinueOnError)
	which := fs.String("experiment", "all", "experiment to run: t1, t2, t2x, f2, e1, e2, e3, e4, e5, s1, s2, or all")
	runs := fs.Int("runs", 20, "randomized campaigns per experiment arm (t2, s1, s2)")
	seed := fs.Int64("seed", 0, "base seed for the s1/s2 campaigns; run i uses seed+i")
	frames := fs.Int("frames", 300, "frames per randomized campaign (t2) / churn run (e3)")
	asJSON := fs.Bool("json", false, "emit structured results as JSON instead of tables")
	outPath := fs.String("out", "", "write the report to this file instead of stdout")
	storageFaults := fs.Float64("storage-faults", 0.05, "s1 base per-medium fault rate (torn writes and stuck reads at half, bit rot at full)")
	busFaults := fs.Float64("bus-faults", 0.05, "s2 base per-message fault rate (drop at full, duplicate and delay at half)")
	ringOut := fs.String("ring-out", "", "write the s1/s2 flight-recorder journal (JSONL) to this file")
	serveAddr := fs.String("serve", "", "after the s1/s2 campaigns finish, serve the exported run's telemetry (/metrics, /journal, /traces, /trace/<id>) on this address until interrupted")
	workers := fs.Int("workers", 1, "worker pool size for the s1/s2 campaigns (results are identical for any value)")
	cli.Alias(fs, "runs", "seeds")
	if err := fs.Parse(args); err != nil {
		return err
	}
	out, closeOut, err := cli.Output(*outPath, out)
	if err != nil {
		return err
	}
	defer func() {
		if cerr := closeOut(); err == nil {
			err = cerr
		}
	}()
	var exportRing []telemetry.Event
	var exportReg telemetry.Snapshot
	var exportFrameLen time.Duration

	type experiment struct {
		id  string
		run func() (string, error)
	}
	all := []experiment{
		{"t1", func() (string, error) {
			r, err := experiments.Table1()
			if err != nil {
				return "", err
			}
			return render(*asJSON, r.Text, r)
		}},
		{"t2", func() (string, error) {
			r, err := experiments.Table2(*runs, *frames)
			if err != nil {
				return "", err
			}
			return render(*asJSON, r.Text, r)
		}},
		{"t2x", func() (string, error) {
			r, err := experiments.ExhaustiveVerification(4)
			if err != nil {
				return "", err
			}
			return render(*asJSON, r.Text, r)
		}},
		{"f2", func() (string, error) {
			r, err := experiments.Figure2()
			if err != nil {
				return "", err
			}
			return render(*asJSON, r.Text, r)
		}},
		{"e1", func() (string, error) {
			r, err := experiments.Equipment(4)
			if err != nil {
				return "", err
			}
			return render(*asJSON, r.Text, r)
		}},
		{"e2", func() (string, error) {
			r, err := experiments.Restriction()
			if err != nil {
				return "", err
			}
			return render(*asJSON, r.Text, r)
		}},
		{"e3", func() (string, error) {
			r, err := experiments.CycleGuard(*frames*5, 10)
			if err != nil {
				return "", err
			}
			return render(*asJSON, r.Text, r)
		}},
		{"e4", func() (string, error) {
			r, err := experiments.Scenario()
			if err != nil {
				return "", err
			}
			return render(*asJSON, r.Text, r)
		}},
		{"e5", func() (string, error) {
			r, err := experiments.FailureSweep()
			if err != nil {
				return "", err
			}
			return render(*asJSON, r.Text, r)
		}},
		{"s1", func() (string, error) {
			prof := stable.FaultProfile{
				TornWriteRate: *storageFaults / 2,
				BitRotRate:    *storageFaults,
				StuckReadRate: *storageFaults / 2,
			}
			r, err := experiments.StorageFaults(experiments.CampaignOpts{Seeds: *runs, Frames: *frames, BaseSeed: *seed, Workers: *workers}, prof)
			if err != nil {
				return "", err
			}
			if r.LastRing != nil {
				exportRing = r.LastRing
				exportReg = r.LastRegistry
				exportFrameLen = r.LastFrameLen
			}
			return render(*asJSON, r.Text, r)
		}},
		{"s2", func() (string, error) {
			rates := bus.FaultRates{
				Drop:      *busFaults,
				Duplicate: *busFaults / 2,
				Delay:     *busFaults / 2,
			}
			r, err := experiments.BusFaults(experiments.CampaignOpts{Seeds: min(*runs, 5), Frames: *frames, BaseSeed: *seed, Workers: *workers}, rates)
			if err != nil {
				return "", err
			}
			if r.LastRing != nil {
				exportRing = r.LastRing
				exportReg = r.LastRegistry
				exportFrameLen = r.LastFrameLen
			}
			return render(*asJSON, r.Text, r)
		}},
	}

	ran := false
	for _, e := range all {
		if *which != "all" && *which != e.id {
			continue
		}
		ran = true
		text, err := e.run()
		if err != nil {
			return fmt.Errorf("experiment %s: %w", e.id, err)
		}
		fmt.Fprintln(out, text)
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", *which)
	}
	if *ringOut != "" {
		if exportRing == nil {
			return fmt.Errorf("-ring-out: no flight-recorder ring produced (only s1 and s2 export rings)")
		}
		f, err := os.Create(*ringOut)
		if err != nil {
			return err
		}
		if err := telemetry.WriteJournal(f, exportRing); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %d flight-recorder events to %s\n", len(exportRing), *ringOut)
	}
	if *serveAddr != "" {
		if exportRing == nil {
			return fmt.Errorf("-serve: no flight-recorder ring produced (only s1 and s2 export rings)")
		}
		srv := serve.NewRing(exportRing, exportReg, exportFrameLen)
		addr, err := srv.Start(*serveAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Fprintf(out, "serving telemetry on http://%s (/metrics /journal /traces /trace/<id>); interrupt to stop\n", addr)
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		<-stop
	}
	return nil
}
